package serve

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// The metrics substrate: a minimal Prometheus-text-format registry with no
// external dependencies. Three instrument kinds cover the daemon's needs —
// monotonic counters, gauges, and fixed-bucket histograms — each safe for
// concurrent use via atomics; the registry itself only takes its lock on
// series creation and on scrape.

// Counter is a monotonically increasing counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; counters only go up).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative histogram of float64
// observations (the daemon uses it for request latency in seconds).
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf is implicit
	counts []atomic.Uint64
	inf    atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// DefBuckets are the default latency buckets in seconds, a decade wider
// than Prometheus's defaults on the low end because synthesis requests
// are milliseconds on warm state.
var DefBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

func newHistogram(bounds []float64) *Histogram {
	h := &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds))}
	return h
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	// Buckets are cumulative in the exposition format but stored sparse:
	// each observation lands in its first fitting bucket and render sums.
	idx := sort.SearchFloat64s(h.bounds, v)
	if idx < len(h.bounds) {
		h.counts[idx].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// metricKind tags a family for the # TYPE line.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// series is one labeled instrument inside a family.
type series struct {
	labels string // pre-rendered {k="v",...}, empty for unlabeled
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is one metric name: help text, type, and its labeled series.
type family struct {
	name string
	help string
	kind metricKind
	// series are keyed by rendered label string; insertion order is not
	// kept — scrapes sort for deterministic output.
	series map[string]*series
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) family(name, help string, kind metricKind) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("serve: metric %s re-registered as %s (was %s)", name, kind, f.kind))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// renderLabels turns pairs ("k","v","k2","v2") into `{k="v",k2="v2"}`.
// Pairs are rendered in the given order; callers keep a fixed order per
// family so equal label sets hit the same series.
func renderLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic("serve: odd label pairs")
	}
	out := "{"
	for i := 0; i < len(pairs); i += 2 {
		if i > 0 {
			out += ","
		}
		out += pairs[i] + "=" + strconv.Quote(pairs[i+1])
	}
	return out + "}"
}

func (f *family) get(r *Registry, labels string) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := f.series[labels]
	if !ok {
		s = &series{labels: labels}
		switch f.kind {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		case kindHistogram:
			s.h = newHistogram(DefBuckets)
		}
		f.series[labels] = s
	}
	return s
}

// Counter returns (registering on first use) the counter with the given
// name and label pairs.
func (r *Registry) Counter(name, help string, labelPairs ...string) *Counter {
	return r.family(name, help, kindCounter).get(r, renderLabels(labelPairs)).c
}

// Gauge returns (registering on first use) the gauge with the given name
// and label pairs.
func (r *Registry) Gauge(name, help string, labelPairs ...string) *Gauge {
	return r.family(name, help, kindGauge).get(r, renderLabels(labelPairs)).g
}

// Histogram returns (registering on first use) the histogram with the
// given name and label pairs.
func (r *Registry) Histogram(name, help string, labelPairs ...string) *Histogram {
	return r.family(name, help, kindHistogram).get(r, renderLabels(labelPairs)).h
}

// WriteTo renders every family in the text exposition format, families in
// registration order and series sorted by label string, so scrapes are
// deterministic and diffable.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	type snap struct {
		fam    *family
		series []*series
	}
	snaps := make([]snap, len(fams))
	for i, f := range fams {
		ss := make([]*series, 0, len(f.series))
		for _, s := range f.series {
			ss = append(ss, s)
		}
		sort.Slice(ss, func(a, b int) bool { return ss[a].labels < ss[b].labels })
		snaps[i] = snap{fam: f, series: ss}
	}
	r.mu.Unlock()

	var n int64
	pf := func(format string, args ...any) error {
		m, err := fmt.Fprintf(w, format, args...)
		n += int64(m)
		return err
	}
	for _, sn := range snaps {
		f := sn.fam
		if err := pf("# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return n, err
		}
		for _, s := range sn.series {
			switch f.kind {
			case kindCounter:
				if err := pf("%s%s %d\n", f.name, s.labels, s.c.Value()); err != nil {
					return n, err
				}
			case kindGauge:
				if err := pf("%s%s %d\n", f.name, s.labels, s.g.Value()); err != nil {
					return n, err
				}
			case kindHistogram:
				if err := writeHistogram(pf, f.name, s); err != nil {
					return n, err
				}
			}
		}
	}
	return n, nil
}

func writeHistogram(pf func(string, ...any) error, name string, s *series) error {
	h := s.h
	// Re-render the label set with le appended inside the braces.
	withLE := func(le string) string {
		if s.labels == "" {
			return `{le="` + le + `"}`
		}
		return s.labels[:len(s.labels)-1] + `,le="` + le + `"}`
	}
	var cum uint64
	for i, ub := range h.bounds {
		cum += h.counts[i].Load()
		if err := pf("%s_bucket%s %d\n", name, withLE(formatFloat(ub)), cum); err != nil {
			return err
		}
	}
	cum += h.inf.Load()
	if err := pf("%s_bucket%s %d\n", name, withLE("+Inf"), cum); err != nil {
		return err
	}
	sum := math.Float64frombits(h.sum.Load())
	if err := pf("%s_sum%s %s\n", name, s.labels, formatFloat(sum)); err != nil {
		return err
	}
	return pf("%s_count%s %d\n", name, s.labels, h.count.Load())
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
