// Package fusion implements the Value Fusion component (§4 and Appendix A):
// given a cluster of reconciled offers, it selects one representative value
// per catalog attribute.
//
// Two strategies are provided:
//
//   - MajorityVote: plain majority over exact values; ties break toward the
//     lexicographically smallest most-frequent value for determinism.
//   - Centroid (the paper's choice): a generalization of majority voting to
//     multi-token text — build a term-frequency vector per candidate value,
//     compute the centroid, and pick the value closest to the centroid in
//     Euclidean distance (Appendix A's "Microsoft Windows Vista" example).
package fusion

import (
	"math"
	"sort"

	"prodsynth/internal/catalog"
	"prodsynth/internal/cluster"
	"prodsynth/internal/text"
)

// Strategy selects a representative value from candidates. Candidates are
// non-empty; the returned value must be one of them. The pipeline fuses
// clusters in parallel, so Fuse must be safe for concurrent use — keep
// implementations stateless, as MajorityVote and Centroid are.
type Strategy interface {
	Fuse(candidates []string) string
}

// MajorityVote picks the most frequent exact value.
type MajorityVote struct{}

// Fuse implements Strategy.
func (MajorityVote) Fuse(candidates []string) string {
	counts := make(map[string]int)
	for _, v := range candidates {
		counts[v]++
	}
	best, bestN := "", -1
	keys := make([]string, 0, len(counts))
	for v := range counts {
		keys = append(keys, v)
	}
	sort.Strings(keys)
	for _, v := range keys {
		if counts[v] > bestN {
			best, bestN = v, counts[v]
		}
	}
	return best
}

// Centroid is the paper's token-level generalization of majority voting.
type Centroid struct{}

// Fuse implements Strategy per Appendix A: build |T|-dimensional binary
// term vectors, average them, and return the candidate closest to the
// centroid. Ties break toward the lexicographically smallest candidate.
func (Centroid) Fuse(candidates []string) string {
	if len(candidates) == 1 {
		return candidates[0]
	}
	// Term universe in first-seen order.
	termIdx := make(map[string]int)
	vectors := make([][]float64, len(candidates))
	tokenLists := make([][]string, len(candidates))
	for i, v := range candidates {
		tokenLists[i] = text.DefaultTokenizer.Tokenize(v)
		for _, t := range tokenLists[i] {
			if _, ok := termIdx[t]; !ok {
				termIdx[t] = len(termIdx)
			}
		}
	}
	dim := len(termIdx)
	if dim == 0 {
		return MajorityVote{}.Fuse(candidates)
	}
	centroid := make([]float64, dim)
	for i, toks := range tokenLists {
		vec := make([]float64, dim)
		for _, t := range toks {
			vec[termIdx[t]] = 1 // Appendix A uses presence vectors
		}
		vectors[i] = vec
		for j, x := range vec {
			centroid[j] += x
		}
	}
	for j := range centroid {
		centroid[j] /= float64(len(candidates))
	}

	bestIdx := 0
	bestDist := math.Inf(1)
	for i, vec := range vectors {
		var d float64
		for j := range vec {
			diff := vec[j] - centroid[j]
			d += diff * diff
		}
		switch {
		case d < bestDist-1e-12:
			bestIdx, bestDist = i, d
		case math.Abs(d-bestDist) <= 1e-12 && candidates[i] < candidates[bestIdx]:
			bestIdx = i
		}
	}
	return candidates[bestIdx]
}

// FuseCluster builds a single product specification from a cluster using
// the given strategy. For each catalog attribute appearing in any member
// offer, the candidate values are collected (one per offer that carries the
// attribute) and fused. Attributes are emitted in sorted order.
//
// FuseCluster is a pure function of the member offers and keeps no state
// between calls: re-fusing a cluster after it gains members — the
// streaming pipeline extends open clusters across waves — produces
// exactly the spec that fusing the full member list in one shot would.
func FuseCluster(cl cluster.Cluster, strategy Strategy) catalog.Spec {
	if strategy == nil {
		strategy = Centroid{}
	}
	values := make(map[string][]string)
	for _, o := range cl.Offers {
		for _, av := range o.Spec {
			values[av.Name] = append(values[av.Name], av.Value)
		}
	}
	names := make([]string, 0, len(values))
	for name := range values {
		names = append(names, name)
	}
	sort.Strings(names)
	spec := make(catalog.Spec, 0, len(names))
	for _, name := range names {
		spec = append(spec, catalog.AttributeValue{
			Name:  name,
			Value: strategy.Fuse(values[name]),
		})
	}
	return spec
}

// Synthesized is one product produced by the pipeline.
type Synthesized struct {
	// CategoryID is the catalog category.
	CategoryID string
	// Key and KeyAttr identify the cluster (normalized key value).
	Key     string
	KeyAttr string
	// Spec is the fused product specification in catalog vocabulary.
	Spec catalog.Spec
	// OfferIDs are the member offers the product was synthesized from.
	OfferIDs []string
}

// SynthesizeOne fuses a single cluster into a product instance. Clusters
// are independent, so callers may fan SynthesizeOne out across workers.
func SynthesizeOne(cl cluster.Cluster, strategy Strategy) Synthesized {
	ids := make([]string, len(cl.Offers))
	for i, o := range cl.Offers {
		ids[i] = o.ID
	}
	return Synthesized{
		CategoryID: cl.CategoryID,
		Key:        cl.Key,
		KeyAttr:    cl.KeyAttr,
		Spec:       FuseCluster(cl, strategy),
		OfferIDs:   ids,
	}
}

// SynthesizeAll fuses every cluster into a product instance.
func SynthesizeAll(clusters []cluster.Cluster, strategy Strategy) []Synthesized {
	out := make([]Synthesized, 0, len(clusters))
	for _, cl := range clusters {
		out = append(out, SynthesizeOne(cl, strategy))
	}
	return out
}
