package match

import (
	"fmt"
	"sync"
	"testing"

	"prodsynth/internal/catalog"
	"prodsynth/internal/offer"
)

// manyOffers builds n title-only offers in one category.
func manyOffers(n int, categoryID, title string) *offer.Set {
	offs := make([]offer.Offer, n)
	for i := range offs {
		offs[i] = offer.Offer{
			ID: fmt.Sprintf("o%d", i), Merchant: "m",
			CategoryID: categoryID, Title: title,
		}
	}
	return offer.NewSet(offs)
}

// TestRegistryBuildsOncePerCategory is the regression test for the W×C
// redundant index builds the per-goroutine caches used to do: under
// Workers=8 a category's index must be constructed exactly once, and a
// second Run against the same catalog must not build at all.
func TestRegistryBuildsOncePerCategory(t *testing.T) {
	st := testStore(t)
	reg := NewRegistry()
	m := Matcher{Workers: 8, Registry: reg}

	set := manyOffers(400, "hd", "Western Digital Raptor X")
	ms := m.Run(st, set)
	if ms.Len() == 0 {
		t.Fatal("no matches; the build-count assertion would be vacuous")
	}
	if got := reg.Builds(); got != 1 {
		t.Errorf("Builds after first run = %d, want 1 (one category)", got)
	}

	m.Run(st, set)
	if got := reg.Builds(); got != 1 {
		t.Errorf("Builds after warm rerun = %d, want still 1", got)
	}

	// A second category builds its own entry, once.
	camSet := manyOffers(100, "cam", "Canon EOS 40D")
	m.Run(st, camSet)
	if got := reg.Builds(); got != 2 {
		t.Errorf("Builds after second category = %d, want 2", got)
	}
}

// TestRegistryBuildsOnceLinearPath covers the same guarantee for the
// linear-scan token cache.
func TestRegistryBuildsOnceLinearPath(t *testing.T) {
	st := testStore(t)
	reg := NewRegistry()
	m := Matcher{Workers: 8, Registry: reg, LinearScan: true}
	set := manyOffers(400, "hd", "Western Digital Raptor X")
	m.Run(st, set)
	m.Run(st, set)
	if got := reg.Builds(); got != 1 {
		t.Errorf("Builds = %d, want 1", got)
	}
}

// TestRegistryConcurrentAcquire races many goroutines at a cold registry:
// all must observe the same index, built once.
func TestRegistryConcurrentAcquire(t *testing.T) {
	st := testStore(t)
	reg := NewRegistry()
	var wg sync.WaitGroup
	indexes := make([]*TitleIndex, 32)
	for g := range indexes {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			indexes[g] = reg.TitleIndex(st, "hd")
		}(g)
	}
	wg.Wait()
	for g := 1; g < len(indexes); g++ {
		if indexes[g] != indexes[0] {
			t.Fatalf("goroutine %d saw a different index instance", g)
		}
	}
	if got := reg.Builds(); got != 1 {
		t.Errorf("Builds = %d, want 1", got)
	}
}

// TestRegistryInvalidationOnAddProduct verifies that inserting a product
// into a category evicts the warm entry: an offer that matched nothing
// must match the new product on the next run.
func TestRegistryInvalidationOnAddProduct(t *testing.T) {
	st := testStore(t)
	reg := NewRegistry()
	m := Matcher{Registry: reg}
	set := offer.NewSet([]offer.Offer{
		{ID: "o1", Merchant: "m", CategoryID: "hd", Title: "Hitachi Deskstar HDT725050"},
	})

	if ms := m.Run(st, set); ms.Len() != 0 {
		t.Fatalf("offer matched before the product exists: %+v", ms.All())
	}

	err := st.AddProduct(catalog.Product{
		ID: "p-deskstar", CategoryID: "hd",
		Spec: catalog.Spec{
			{Name: "Brand", Value: "Hitachi"},
			{Name: "Model", Value: "Deskstar HDT725050"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	ms := m.Run(st, set)
	got, ok := ms.ProductFor("o1")
	if !ok || got.ProductID != "p-deskstar" {
		t.Errorf("after AddProduct: match = %+v, %v (stale index not evicted?)", got, ok)
	}
	// The post-insertion state arrives as a posting-list delta, not a
	// second cold build.
	if builds := reg.Builds(); builds != 1 {
		t.Errorf("Builds = %d, want 1 (insertion applies a delta, not a rebuild)", builds)
	}
	if deltas := reg.Deltas(); deltas != 1 {
		t.Errorf("Deltas = %d, want 1", deltas)
	}
}

// TestRegistryInvalidateAndRelease exercises the manual eviction surface.
func TestRegistryInvalidateAndRelease(t *testing.T) {
	st := testStore(t)
	reg := NewRegistry()
	reg.TitleIndex(st, "hd")
	reg.Invalidate(st, "hd")
	reg.TitleIndex(st, "hd")
	if got := reg.Builds(); got != 2 {
		t.Errorf("Builds after Invalidate = %d, want 2", got)
	}
	reg.ReleaseStore(st)
	if got := reg.Entries(); got != 0 {
		t.Errorf("Entries after ReleaseStore = %d, want 0", got)
	}
}

// TestMatcherWorkerCountInvariance asserts identical MatchSet output across
// worker counts on a mixed workload (acceptance criterion for the shared
// registry refactor).
func TestMatcherWorkerCountInvariance(t *testing.T) {
	st := testStore(t)
	var offs []offer.Offer
	titles := []string{
		"Seagate Barracuda 7200.10 HDD",
		"Western Digital Raptor X",
		"Canon EOS 40D",
		"Completely unrelated gadget xyz",
	}
	for i := 0; i < 300; i++ {
		cat := "hd"
		if i%4 == 2 {
			cat = "cam"
		}
		offs = append(offs, offer.Offer{
			ID: fmt.Sprintf("o%d", i), Merchant: "m",
			CategoryID: cat, Title: titles[i%4],
		})
	}
	set := offer.NewSet(offs)
	base := Matcher{Workers: 1}.Run(st, set)
	for _, w := range []int{2, 4, 8} {
		got := Matcher{Workers: w}.Run(st, set)
		if got.Len() != base.Len() {
			t.Fatalf("Workers=%d: Len=%d, want %d", w, got.Len(), base.Len())
		}
		for _, m := range base.All() {
			gm, ok := got.ProductFor(m.OfferID)
			if !ok || gm.ProductID != m.ProductID || gm.Score != m.Score {
				t.Fatalf("Workers=%d: %s -> %+v, want %+v", w, m.OfferID, gm, m)
			}
		}
	}
}
