// Package durable is the out-of-core persistence layer for the catalog:
// per-shard snapshots plus an append-only delta log, composed so that
// crash recovery is snapshot-load followed by log-replay.
//
// A Manager owns one data directory:
//
//	MANIFEST                 which snapshot epoch is live, and the first
//	                         log segment it does not cover
//	shard-<i>-<epoch>.psct   one snapfmt-framed catalog snapshot per
//	                         backend shard, taken at the epoch's compaction
//	wal-<seq>.psdl           append-only log segments of CRC-framed
//	                         ProductsSince deltas (category registrations
//	                         and product appends), in commit order
//
// Writes flow through a catalog.Observer attached to the live store, so
// every committed mutation lands in the active log segment before the
// caller regains control (with fsync timing governed by FsyncPolicy).
// Compaction rotates the log, captures per-shard snapshots, atomically
// publishes a new MANIFEST (temp file + rename + directory fsync), and
// only then deletes the segments and snapshots the new epoch obsoletes —
// so a crash at any point leaves either the old epoch or the new one
// fully intact. Open replays the tail of the log over the loaded
// snapshot; replay is idempotent (the catalog's per-category version
// counters make overlap harmless) and a torn final record in the last
// segment is truncated rather than treated as corruption.
package durable

import (
	"time"

	"prodsynth/internal/catalog"
)

// FsyncPolicy decides when log appends are forced to stable storage.
type FsyncPolicy int

const (
	// SyncAlways fsyncs after every appended record: no acknowledged
	// mutation is lost on power failure. The default.
	SyncAlways FsyncPolicy = iota
	// SyncInterval leaves syncing to the Manager.Run flush ticker (or
	// explicit Sync calls): a crash loses at most FsyncInterval worth of
	// appends, but the append path never blocks on the disk.
	SyncInterval
	// SyncNone never fsyncs the log (snapshots and the manifest are
	// still synced): durability only as good as the page cache.
	SyncNone
)

func (p FsyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	default:
		return "unknown"
	}
}

// Defaults for Options zero values.
const (
	DefaultMaxSegmentBytes = 4 << 20
	DefaultFsyncInterval   = 100 * time.Millisecond
)

// Options configures a Manager. The zero value is usable: default shard
// count, fsync on every append, 4 MiB segments, and no background
// compaction (call Compact explicitly or set SnapshotInterval).
type Options struct {
	// Shards is the catalog backend shard count for the recovered store
	// (and the number of per-shard snapshot files written at compaction).
	// 0 means catalog.DefaultShards. Snapshot bytes are independent of
	// the shard count, so it may change between restarts.
	Shards int
	// Fsync is the log append sync policy.
	Fsync FsyncPolicy
	// FsyncInterval is the Run flush period under SyncInterval.
	// 0 means DefaultFsyncInterval.
	FsyncInterval time.Duration
	// MaxSegmentBytes rotates the active log segment when it grows past
	// this size. 0 means DefaultMaxSegmentBytes.
	MaxSegmentBytes int64
	// SnapshotInterval makes Run compact periodically while serving.
	// 0 disables timed compaction.
	SnapshotInterval time.Duration
	// CompactRecords makes Run compact whenever the log depth (records
	// not yet covered by a snapshot) reaches this count. 0 disables
	// depth-triggered compaction.
	CompactRecords int
	// Clock supplies the time source for the durations the layer
	// measures (RecoveryStats.Duration). nil means the wall clock;
	// inject a fake so recovery timings — and the tests pinning them —
	// stay deterministic.
	Clock Clock
}

// Clock abstracts time for the durability layer, so timing-dependent
// stats are testable without the wall clock.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
}

// wallClock is the default Clock.
type wallClock struct{}

//lint:allow clockcheck wallClock is the package's one real-clock site, behind the injectable Clock
func (wallClock) Now() time.Time { return time.Now() }

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = catalog.DefaultShards
	}
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = DefaultMaxSegmentBytes
	}
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = DefaultFsyncInterval
	}
	if o.Clock == nil {
		o.Clock = wallClock{}
	}
	return o
}

// RecoveryStats describes what one Open did to reach a live store.
type RecoveryStats struct {
	// Duration is the wall time from opening the directory to the store
	// being ready (snapshot load plus log replay).
	Duration time.Duration
	// SnapshotEpoch is the manifest epoch the snapshots were loaded
	// from; 0 when the directory had no manifest (fresh start).
	SnapshotEpoch uint64
	// SnapshotProducts counts products restored from shard snapshots.
	SnapshotProducts int
	// ReplayedRecords counts log records applied over the snapshot
	// (records the snapshot already covered are counted too; applying
	// them is a no-op).
	ReplayedRecords int
	// TruncatedBytes is the torn tail cut off the last segment, if any.
	TruncatedBytes int64
	// Segments is how many log segments were replayed.
	Segments int
}

// Stats is a point-in-time view of the durability layer for metrics.
type Stats struct {
	// Recovery is what the opening recovery did.
	Recovery RecoveryStats
	// Epoch is the live snapshot epoch (advances on every compaction).
	Epoch uint64
	// Compactions counts compactions completed since Open.
	Compactions uint64
	// LogDepthRecords / LogDepthBytes measure the log tail not yet
	// covered by a snapshot — what a crash right now would replay.
	LogDepthRecords uint64
	LogDepthBytes   uint64
	// AppendErrors counts log append failures (the store stays correct
	// in memory; durability of those records is lost). LastAppendError
	// is the first such failure's text, for diagnostics.
	AppendErrors    uint64
	LastAppendError string
}
