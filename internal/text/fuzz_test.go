package text

import (
	"testing"
	"unicode/utf8"
)

// fuzzSeeds are shared starting points: ASCII, mixed alpha/digit
// boundaries, separators, Unicode case pairs, and invalid UTF-8.
var fuzzSeeds = []string{
	"",
	"500GB Seagate Barracuda",
	"ATA 100 mb/s",
	"Mfr. Part #: HDT-725050VLA360",
	"ẞträße 100µF", // non-ASCII letters with case folding
	"\xff\xfe broken \x80 utf8",
	"ＡＢＣ１２３", // full-width letters and digits
	"a\x00b\tc\nd",
	"🙂emoji42😀",
}

// FuzzTokenizeIDs asserts the interned-ID tokenization path agrees with
// the allocation-heavy reference path on arbitrary input, including
// non-UTF-8: TokenizeIDs must produce exactly the tokens of Tokenize, in
// order, with IDs that round-trip through the dictionary, and a frozen
// Dict must Lookup every token to the same ID.
func FuzzTokenizeIDs(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		want := DefaultTokenizer.Tokenize(s)

		b := NewDictBuilder()
		ids, _ := DefaultTokenizer.TokenizeIDs(b, nil, nil, s)
		if len(ids) != len(want) {
			t.Fatalf("TokenizeIDs returned %d tokens, Tokenize %d (input %q)", len(ids), len(want), s)
		}
		dict := b.Build()
		for i, id := range ids {
			if got := dict.Token(id); got != want[i] {
				t.Fatalf("token %d: ID %d spells %q, Tokenize says %q (input %q)", i, id, got, want[i], s)
			}
			if lid, ok := dict.Lookup(want[i]); !ok || lid != id {
				t.Fatalf("Lookup(%q) = %d,%v; interned as %d (input %q)", want[i], lid, ok, id, s)
			}
		}

		// Tokens are always valid UTF-8, even when the input is not: the
		// scanner decodes rune by rune and re-encodes what it keeps.
		for _, tok := range want {
			if !utf8.ValidString(tok) {
				t.Fatalf("token %q not valid UTF-8 (input %q)", tok, s)
			}
		}

		// Buffer reuse across calls must not change the output.
		ids2, _ := DefaultTokenizer.TokenizeIDs(b, ids[:0], nil, s)
		if len(ids2) != len(ids) {
			t.Fatalf("reused-buffer run returned %d tokens, want %d", len(ids2), len(ids))
		}
		for i := range ids {
			if ids2[i] != ids[i] {
				t.Fatalf("reused-buffer run differs at %d: %d vs %d", i, ids2[i], ids[i])
			}
		}
	})
}

// FuzzDictIntern asserts the interner is a bijection under arbitrary
// (including non-UTF-8) token strings: Intern and InternBytes agree,
// IDs are dense and stable, and Extend preserves every assignment.
func FuzzDictIntern(f *testing.F) {
	for i := 0; i+1 < len(fuzzSeeds); i++ {
		f.Add(fuzzSeeds[i], fuzzSeeds[i+1])
	}
	f.Fuzz(func(t *testing.T, a, b string) {
		bld := NewDictBuilder()
		ida := bld.Intern(a)
		if got := bld.InternBytes([]byte(a)); got != ida {
			t.Fatalf("InternBytes(%q) = %d, Intern = %d", a, got, ida)
		}
		idb := bld.Intern(b)
		if (a == b) != (ida == idb) {
			t.Fatalf("Intern(%q)=%d, Intern(%q)=%d: equality mismatch", a, ida, b, idb)
		}
		if max := uint32(bld.Len() - 1); ida > max || idb > max {
			t.Fatalf("IDs not dense: %d, %d with Len %d", ida, idb, bld.Len())
		}
		d := bld.Build()
		if got := d.Token(ida); got != a {
			t.Fatalf("Token(%d) = %q, want %q", ida, got, a)
		}
		if got, ok := d.LookupBytes([]byte(b)); !ok || got != idb {
			t.Fatalf("LookupBytes(%q) = %d,%v, want %d", b, got, ok, idb)
		}

		// Extend keeps old assignments and appends new ones densely.
		ext := d.Extend()
		if got := ext.Intern(a); got != ida {
			t.Fatalf("extended Intern(%q) = %d, want preserved %d", a, got, ida)
		}
		c := a + "\x00" + b
		idc := ext.Intern(c)
		d2 := ext.Build()
		if got, ok := d2.Lookup(b); !ok || got != idb {
			t.Fatalf("extended Lookup(%q) = %d,%v, want %d", b, got, ok, idb)
		}
		if got := d2.Token(idc); got != c {
			t.Fatalf("extended Token(%d) = %q, want %q", idc, got, c)
		}
		// The original dict must be untouched by the extension.
		if d.Len() > int(idc) {
			t.Fatalf("base dict grew to %d after Extend", d.Len())
		}
		if _, ok := d.Lookup(c); ok && c != a && c != b {
			t.Fatalf("base dict sees extension-only token %q", c)
		}
	})
}
