package dumas

import (
	"fmt"
	"testing"

	"prodsynth/internal/catalog"
	"prodsynth/internal/correspond"
	"prodsynth/internal/match"
	"prodsynth/internal/offer"
)

// fixture builds matched product-offer duplicates where the merchant
// renames Speed->RPM and Interface->Conn but values are near-identical —
// the redundancy DUMAS exploits.
func fixture(t *testing.T) (*catalog.Store, *offer.Set, *match.MatchSet) {
	t.Helper()
	st := catalog.NewStore()
	err := st.AddCategory(catalog.Category{
		ID: "hd",
		Schema: catalog.Schema{Attributes: []catalog.Attribute{
			{Name: "Brand"}, {Name: "Speed"}, {Name: "Interface"},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	brands := []string{"Seagate", "Hitachi", "Western Digital", "Samsung"}
	speeds := []string{"5400", "7200", "10000", "15000"}
	ifaces := []string{"SATA 300", "IDE 133", "SCSI", "ATA 100"}
	var offs []offer.Offer
	var ms []match.Match
	for i := 0; i < 12; i++ {
		pid := fmt.Sprintf("p%d", i)
		err := st.AddProduct(catalog.Product{ID: pid, CategoryID: "hd", Spec: catalog.Spec{
			{Name: "Brand", Value: brands[i%4]},
			{Name: "Speed", Value: speeds[i%4]},
			{Name: "Interface", Value: ifaces[(i+1)%4]},
		}})
		if err != nil {
			t.Fatal(err)
		}
		oid := fmt.Sprintf("o%d", i)
		offs = append(offs, offer.Offer{ID: oid, Merchant: "shop", CategoryID: "hd", Spec: catalog.Spec{
			{Name: "Make", Value: brands[i%4]},
			{Name: "RPM", Value: speeds[i%4]},
			{Name: "Conn", Value: ifaces[(i+1)%4]},
		}})
		ms = append(ms, match.Match{OfferID: oid, ProductID: pid})
	}
	return st, offer.NewSet(offs), match.NewMatchSet(ms)
}

func TestDumasFindsRenamedCorrespondences(t *testing.T) {
	st, offers, matches := fixture(t)
	scored := Matcher{}.Score(st, offers, matches)

	want := map[string]string{"RPM": "Speed", "Conn": "Interface", "Make": "Brand"}
	top := make(map[string]correspond.Scored)
	for _, sc := range scored {
		cur, ok := top[sc.MerchantAttr]
		if !ok || sc.Score > cur.Score {
			top[sc.MerchantAttr] = sc
		}
	}
	for mAttr, catAttr := range want {
		got := top[mAttr]
		if got.CatalogAttr != catAttr || got.Score <= 0 {
			t.Errorf("top for %q = %+v, want %q", mAttr, got, catAttr)
		}
	}
}

func TestDumasOneToOneViaMatching(t *testing.T) {
	st, offers, matches := fixture(t)
	scored := Matcher{}.Score(st, offers, matches)
	// The bipartite matching gives at most one positive score per
	// merchant attribute and per catalog attribute within a key.
	posByMerchant := make(map[string]int)
	posByCatalog := make(map[string]int)
	for _, sc := range scored {
		if sc.Score > 0 {
			posByMerchant[sc.MerchantAttr]++
			posByCatalog[sc.CatalogAttr]++
		}
	}
	for a, n := range posByMerchant {
		if n > 1 {
			t.Errorf("merchant attr %q has %d positive matches", a, n)
		}
	}
	for a, n := range posByCatalog {
		if n > 1 {
			t.Errorf("catalog attr %q has %d positive matches", a, n)
		}
	}
}

func TestDumasNoMatchesNoSignal(t *testing.T) {
	st, offers, _ := fixture(t)
	scored := Matcher{}.Score(st, offers, match.NewMatchSet(nil))
	for _, sc := range scored {
		if sc.Score != 0 {
			t.Fatalf("score without matches = %+v", sc)
		}
	}
}

func TestDumasCoversUniverse(t *testing.T) {
	st, offers, matches := fixture(t)
	scored := Matcher{}.Score(st, offers, matches)
	// 3 catalog x 3 merchant attrs = 9 candidates.
	if len(scored) != 9 {
		t.Errorf("scored = %d, want 9", len(scored))
	}
	for i := 1; i < len(scored); i++ {
		if scored[i].Score > scored[i-1].Score {
			t.Fatal("not sorted")
		}
	}
}
