// Package extract implements the Web-page Attribute Extraction component of
// the paper (§4): it parses the DOM tree of a merchant landing page, finds
// all tables, and harvests attribute-value pairs from rows with exactly two
// columns, treating the first column as the attribute name and the second as
// the value.
//
// As the paper notes, this deliberately simple extractor makes mistakes on
// pages with exotic table structure; the Schema Reconciliation component is
// responsible for filtering that noise, because incorrectly extracted "attributes"
// develop value distributions that match no catalog attribute. A bullet-list
// fallback (the paper's acknowledged coverage gap, revisited as future work)
// is provided behind an option.
package extract

import (
	"strings"

	"prodsynth/internal/catalog"
	"prodsynth/internal/htmlx"
)

// Options configures the extractor.
type Options struct {
	// IncludeDefinitionLists also harvests <dl><dt>name<dd>value lists.
	IncludeDefinitionLists bool
	// IncludeBulletLists also harvests <li>Name: Value</li> items — the
	// extension the paper lists as future work. Off by default to match
	// the paper's evaluated configuration.
	IncludeBulletLists bool
	// MaxPairs caps the number of extracted pairs per page (0 = no cap);
	// a guard against adversarial or pathological pages.
	MaxPairs int
	// MaxValueLen drops pairs whose value is longer than this many bytes
	// (0 = no limit). Long cells are usually prose, not specs.
	MaxValueLen int
}

// DefaultOptions matches the paper's evaluated extractor: tables only.
var DefaultOptions = Options{MaxValueLen: 300}

// FromHTML parses the page and extracts attribute-value pairs using the
// default options.
func FromHTML(page string) catalog.Spec {
	return WithOptions(page, DefaultOptions)
}

// WithOptions parses the page and extracts attribute-value pairs.
func WithOptions(page string, opts Options) catalog.Spec {
	root := htmlx.Parse(page)
	return FromDOM(root, opts)
}

// FromDOM extracts attribute-value pairs from an already-parsed DOM.
func FromDOM(root *htmlx.Node, opts Options) catalog.Spec {
	var spec catalog.Spec
	seen := make(map[string]bool)

	add := func(name, value string) {
		name = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(name), ":"))
		value = strings.TrimSpace(value)
		if name == "" || value == "" {
			return
		}
		if opts.MaxValueLen > 0 && len(value) > opts.MaxValueLen {
			return
		}
		if opts.MaxPairs > 0 && len(spec) >= opts.MaxPairs {
			return
		}
		// First occurrence wins; spec tables occasionally repeat rows.
		if seen[name] {
			return
		}
		seen[name] = true
		spec = append(spec, catalog.AttributeValue{Name: name, Value: value})
	}

	for _, table := range root.FindAll("table") {
		extractTable(table, add)
	}
	if opts.IncludeDefinitionLists {
		for _, dl := range root.FindAll("dl") {
			extractDefinitionList(dl, add)
		}
	}
	if opts.IncludeBulletLists {
		for _, li := range root.FindAll("li") {
			extractBullet(li, add)
		}
	}
	return spec
}

// extractTable walks one table element. Per the paper, only rows with
// exactly two cells contribute: first cell is the name, second the value.
// Rows are found at any nesting depth below the table (tbody/thead are
// common), but rows of nested tables are handled by their own FindAll
// visit, so they are skipped here.
func extractTable(table *htmlx.Node, add func(name, value string)) {
	var rows []*htmlx.Node
	table.Walk(func(n *htmlx.Node) bool {
		if n != table && n.Type == htmlx.ElementNode && n.Tag == "table" {
			return false // nested table: visited separately
		}
		if n.Type == htmlx.ElementNode && n.Tag == "tr" {
			rows = append(rows, n)
			return false
		}
		return true
	})
	for _, tr := range rows {
		cells := cellsOf(tr)
		if len(cells) != 2 {
			continue
		}
		add(cells[0].InnerText(), cells[1].InnerText())
	}
}

func cellsOf(tr *htmlx.Node) []*htmlx.Node {
	var cells []*htmlx.Node
	for _, c := range tr.Children {
		if c.Type == htmlx.ElementNode && (c.Tag == "td" || c.Tag == "th") {
			cells = append(cells, c)
		}
	}
	return cells
}

func extractDefinitionList(dl *htmlx.Node, add func(name, value string)) {
	var pendingName string
	for _, c := range dl.Children {
		if c.Type != htmlx.ElementNode {
			continue
		}
		switch c.Tag {
		case "dt":
			pendingName = c.InnerText()
		case "dd":
			if pendingName != "" {
				add(pendingName, c.InnerText())
				pendingName = ""
			}
		}
	}
}

// extractBullet parses "Name: Value" items. Only the first colon splits; a
// value may itself contain colons ("Interface: SATA: 300" keeps "SATA: 300").
func extractBullet(li *htmlx.Node, add func(name, value string)) {
	text := li.InnerText()
	colon := strings.IndexByte(text, ':')
	if colon <= 0 || colon == len(text)-1 {
		return
	}
	name := text[:colon]
	// Reject bullets whose "name" looks like prose (too many tokens).
	if len(strings.Fields(name)) > 6 {
		return
	}
	add(name, text[colon+1:])
}
