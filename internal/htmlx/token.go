// Package htmlx is a small, dependency-free HTML tokenizer and DOM builder,
// sufficient for the Web-page Attribute Extraction component of the paper
// (§4): it parses merchant landing pages, builds an element tree, and lets
// the extractor walk tables. It handles the messy HTML found in the wild —
// unquoted attributes, unclosed tags (<li>, <td>, <tr>, <p>), void elements
// (<br>, <img>), comments, script/style raw text, and character entities.
//
// It intentionally does not implement the full WHATWG parsing algorithm;
// the subset implemented is documented per function and covered by tests.
package htmlx

import (
	"strings"
	"unicode"
)

// TokenType enumerates the lexical token kinds.
type TokenType int

const (
	// TextToken is character data between tags.
	TextToken TokenType = iota
	// StartTagToken is <name attr=...>.
	StartTagToken
	// EndTagToken is </name>.
	EndTagToken
	// SelfClosingToken is <name ... />.
	SelfClosingToken
	// CommentToken is <!-- ... --> (also used for <!doctype>).
	CommentToken
)

// Token is one lexical HTML token.
type Token struct {
	Type TokenType
	// Data is the tag name (lower-cased) for tag tokens, or the decoded
	// text for TextToken/CommentToken.
	Data string
	// Attrs holds the tag attributes in document order.
	Attrs []Attr
}

// Attr is one name="value" attribute.
type Attr struct {
	Key string
	Val string
}

// Tokenize lexes the whole document into tokens. It never fails: malformed
// markup degrades to text, mirroring browser behaviour.
func Tokenize(input string) []Token {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		lt := strings.IndexByte(input[i:], '<')
		if lt < 0 {
			emitText(&toks, input[i:])
			break
		}
		if lt > 0 {
			emitText(&toks, input[i:i+lt])
			i += lt
		}
		// input[i] == '<'
		if i+1 >= n {
			emitText(&toks, input[i:])
			break
		}
		switch {
		case strings.HasPrefix(input[i:], "<!--"):
			end := strings.Index(input[i+4:], "-->")
			if end < 0 {
				toks = append(toks, Token{Type: CommentToken, Data: input[i+4:]})
				i = n
			} else {
				toks = append(toks, Token{Type: CommentToken, Data: input[i+4 : i+4+end]})
				i += 4 + end + 3
			}
		case input[i+1] == '!' || input[i+1] == '?':
			// Doctype or processing instruction: swallow to '>'.
			end := strings.IndexByte(input[i:], '>')
			if end < 0 {
				i = n
			} else {
				toks = append(toks, Token{Type: CommentToken, Data: input[i+1 : i+end]})
				i += end + 1
			}
		case input[i+1] == '/':
			end := strings.IndexByte(input[i:], '>')
			if end < 0 {
				emitText(&toks, input[i:])
				i = n
				break
			}
			name := strings.ToLower(strings.TrimSpace(input[i+2 : i+end]))
			if name != "" {
				toks = append(toks, Token{Type: EndTagToken, Data: name})
			}
			i += end + 1
		case isNameStart(input[i+1]):
			tok, next := lexStartTag(input, i)
			toks = append(toks, tok)
			i = next
			// script and style content is raw text until the matching
			// close tag; never interpret tags inside it.
			if tok.Type == StartTagToken && (tok.Data == "script" || tok.Data == "style") {
				closer := "</" + tok.Data
				rest := strings.ToLower(input[i:])
				end := strings.Index(rest, closer)
				if end < 0 {
					if i < n {
						toks = append(toks, Token{Type: TextToken, Data: input[i:]})
					}
					i = n
					break
				}
				if end > 0 {
					toks = append(toks, Token{Type: TextToken, Data: input[i : i+end]})
				}
				i += end
				gt := strings.IndexByte(input[i:], '>')
				toks = append(toks, Token{Type: EndTagToken, Data: tok.Data})
				if gt < 0 {
					i = n
				} else {
					i += gt + 1
				}
			}
		default:
			// A lone '<' that does not open a tag: literal text.
			emitText(&toks, "<")
			i++
		}
	}
	return toks
}

func emitText(toks *[]Token, raw string) {
	if raw == "" {
		return
	}
	*toks = append(*toks, Token{Type: TextToken, Data: UnescapeEntities(raw)})
}

func isNameStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

// lexStartTag lexes a start tag beginning at input[start] == '<'.
// Returns the token and the index just past the closing '>'.
func lexStartTag(input string, start int) (Token, int) {
	i := start + 1
	n := len(input)
	nameStart := i
	for i < n && (isNameStart(input[i]) || input[i] >= '0' && input[i] <= '9' || input[i] == '-' || input[i] == ':') {
		i++
	}
	tok := Token{Type: StartTagToken, Data: strings.ToLower(input[nameStart:i])}
	for i < n {
		// Skip whitespace.
		for i < n && isSpace(input[i]) {
			i++
		}
		if i >= n {
			return tok, n
		}
		if input[i] == '>' {
			return tok, i + 1
		}
		if input[i] == '/' {
			// Possibly self-closing.
			j := i + 1
			for j < n && isSpace(input[j]) {
				j++
			}
			if j < n && input[j] == '>' {
				tok.Type = SelfClosingToken
				return tok, j + 1
			}
			i++
			continue
		}
		// Attribute name.
		keyStart := i
		for i < n && input[i] != '=' && input[i] != '>' && input[i] != '/' && !isSpace(input[i]) {
			i++
		}
		key := strings.ToLower(input[keyStart:i])
		for i < n && isSpace(input[i]) {
			i++
		}
		val := ""
		if i < n && input[i] == '=' {
			i++
			for i < n && isSpace(input[i]) {
				i++
			}
			if i < n && (input[i] == '"' || input[i] == '\'') {
				quote := input[i]
				i++
				valStart := i
				for i < n && input[i] != quote {
					i++
				}
				val = input[valStart:i]
				if i < n {
					i++ // closing quote
				}
			} else {
				valStart := i
				for i < n && !isSpace(input[i]) && input[i] != '>' {
					i++
				}
				val = input[valStart:i]
			}
		}
		if key != "" {
			tok.Attrs = append(tok.Attrs, Attr{Key: key, Val: UnescapeEntities(val)})
		}
	}
	return tok, n
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f'
}

// entityTable covers the named entities that occur in product spec markup.
var entityTable = map[string]rune{
	"amp": '&', "lt": '<', "gt": '>', "quot": '"', "apos": '\'',
	"nbsp": ' ', "copy": '©', "reg": '®', "trade": '™',
	"deg": '°', "frac12": '½', "frac14": '¼', "times": '×',
	"ndash": '–', "mdash": '—', "hellip": '…', "bull": '•',
}

// UnescapeEntities decodes named and numeric character references. Unknown
// references are left verbatim (browser behaviour).
func UnescapeEntities(s string) string {
	amp := strings.IndexByte(s, '&')
	if amp < 0 {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	b.WriteString(s[:amp])
	i := amp
	for i < len(s) {
		c := s[i]
		if c != '&' {
			b.WriteByte(c)
			i++
			continue
		}
		semi := strings.IndexByte(s[i:], ';')
		if semi < 0 || semi > 10 {
			b.WriteByte(c)
			i++
			continue
		}
		ent := s[i+1 : i+semi]
		if r, ok := decodeEntity(ent); ok {
			b.WriteRune(r)
			i += semi + 1
			continue
		}
		b.WriteByte(c)
		i++
	}
	return b.String()
}

func decodeEntity(ent string) (rune, bool) {
	if ent == "" {
		return 0, false
	}
	if ent[0] == '#' {
		num := ent[1:]
		base := 10
		if len(num) > 0 && (num[0] == 'x' || num[0] == 'X') {
			base = 16
			num = num[1:]
		}
		var v rune
		for _, c := range num {
			var d rune
			switch {
			case c >= '0' && c <= '9':
				d = c - '0'
			case base == 16 && c >= 'a' && c <= 'f':
				d = c - 'a' + 10
			case base == 16 && c >= 'A' && c <= 'F':
				d = c - 'A' + 10
			default:
				return 0, false
			}
			v = v*rune(base) + d
			if v > unicode.MaxRune {
				return 0, false
			}
		}
		if v == 0 {
			return 0, false
		}
		return v, true
	}
	r, ok := entityTable[ent]
	return r, ok
}
