//go:build !race

package match

// raceEnabled reports whether the race detector is active; allocation
// guards are skipped under it (its sync.Pool instrumentation drops pooled
// items at random, which allocates).
const raceEnabled = false
