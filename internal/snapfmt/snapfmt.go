// Package snapfmt is the shared framing and payload codec behind every
// on-disk snapshot artifact: the learned model (internal/core), the
// catalog store (internal/catalog), and the combined bundle (the root
// package). Each artifact is one framed block — a magic + version +
// length + CRC32 header over a deterministic little-endian payload —
// written through a Writer and parsed through a strict bounds-checked
// Reader that latches its first failure.
//
// Layout of one block (all integers little-endian):
//
//	magic   (4 bytes, per artifact kind)
//	version uint32
//	length  uint64 (payload byte count)
//	crc32   uint32 (IEEE, over the payload)
//	payload
//
// Blocks are self-delimiting, so artifacts can be concatenated: the
// bundle embeds a catalog block and a model block back to back. Decode
// reads exactly one block and leaves the reader positioned after it;
// ExpectEOF asserts a clean end of input where nothing may follow.
package snapfmt

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

const headerSize = 20

// HeaderSize is the framed-block header length: magic + version + length
// + crc32. Composite artifacts use it to compute the absolute offset of
// an embedded block inside an outer payload.
const HeaderSize = headerSize

// OffsetReader wraps a reader and counts the bytes consumed, so Decode
// can report *where* in a multi-gigabyte artifact a bad frame sits. The
// base offset supports readers positioned inside a larger artifact (an
// embedded block): Offset reports base + bytes consumed.
type OffsetReader struct {
	r    io.Reader
	base int64
	n    int64
}

// NewOffsetReader wraps r counting from byte 0.
func NewOffsetReader(r io.Reader) *OffsetReader { return NewOffsetReaderAt(r, 0) }

// NewOffsetReaderAt wraps r counting from the given base offset.
func NewOffsetReaderAt(r io.Reader, base int64) *OffsetReader {
	return &OffsetReader{r: r, base: base}
}

func (o *OffsetReader) Read(p []byte) (int, error) {
	n, err := o.r.Read(p)
	o.n += int64(n)
	return n, err
}

// Offset returns the absolute position of the next unread byte.
func (o *OffsetReader) Offset() int64 { return o.base + o.n }

// positioned is satisfied by OffsetReader (and anything else that knows
// its absolute position); Decode and ExpectEOF use it to locate errors.
type positioned interface{ Offset() int64 }

// TrackOffset wraps r so Decode errors carry byte offsets; a reader that
// already reports its position is returned unchanged.
func TrackOffset(r io.Reader) io.Reader {
	if _, ok := r.(positioned); ok {
		return r
	}
	return NewOffsetReader(r)
}

// Encode frames the payload under the given magic and format version and
// writes the block to w. maxPayload must be the same limit the artifact's
// decoder enforces: a payload past it is rejected here, at save time,
// rather than producing an artifact every later Decode refuses to load.
func Encode(w io.Writer, magic [4]byte, version uint32, maxPayload uint64, payload []byte) error {
	if uint64(len(payload)) > maxPayload {
		return fmt.Errorf("snapfmt: payload %d bytes exceeds the %q format limit %d — artifact would be unloadable", len(payload), magic[:], maxPayload)
	}
	header := make([]byte, 0, headerSize)
	header = append(header, magic[:]...)
	header = binary.LittleEndian.AppendUint32(header, version)
	header = binary.LittleEndian.AppendUint64(header, uint64(len(payload)))
	header = binary.LittleEndian.AppendUint32(header, crc32.ChecksumIEEE(payload))
	if _, err := w.Write(header); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// Decode reads one framed block from r, strictly: wrong magic, a version
// other than version, a length past maxPayload, and any length or
// checksum mismatch all error wrapping baseErr, never a panic or a
// partial payload. Genuine reader I/O failures pass through unwrapped.
// Decode consumes exactly the block and nothing after it.
//
// When r reports its position (an OffsetReader, or anything with an
// Offset() int64 method — see TrackOffset), every format error names the
// byte offset of the bad frame, so corruption in a multi-gigabyte
// artifact is a seek target rather than a mystery.
func Decode(r io.Reader, magic [4]byte, version uint32, maxPayload uint64, baseErr error) ([]byte, error) {
	var start int64
	pos, tracked := r.(positioned)
	if tracked {
		start = pos.Offset()
	}
	// at locates the frame in errors when the reader tracks offsets.
	at := ""
	if tracked {
		at = fmt.Sprintf(" (frame at byte %d)", start)
	}
	header := make([]byte, headerSize)
	if _, err := io.ReadFull(r, header); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: truncated header: %v%s", baseErr, err, at)
		}
		return nil, err // genuine reader I/O failure, not a format error
	}
	if !bytes.Equal(header[:4], magic[:]) {
		return nil, fmt.Errorf("%w: bad magic %q%s", baseErr, header[:4], at)
	}
	if v := binary.LittleEndian.Uint32(header[4:8]); v != version {
		return nil, fmt.Errorf("%w: unsupported format version %d (want %d)%s", baseErr, v, version, at)
	}
	length := binary.LittleEndian.Uint64(header[8:16])
	if length > maxPayload {
		return nil, fmt.Errorf("%w: payload length %d exceeds limit%s", baseErr, length, at)
	}
	sum := binary.LittleEndian.Uint32(header[16:20])

	// Read through a limited ReadAll rather than a trusted-length alloc,
	// so a forged length cannot force a giant allocation. ReadAll never
	// returns io.EOF, so any error here is a genuine reader failure —
	// short input surfaces as the length mismatch below instead.
	payload, err := io.ReadAll(io.LimitReader(r, int64(length)))
	if err != nil {
		return nil, err
	}
	if uint64(len(payload)) != length {
		if tracked {
			return nil, fmt.Errorf("%w: truncated payload: %d of %d bytes (frame at byte %d, input ends at byte %d)",
				baseErr, len(payload), length, start, pos.Offset())
		}
		return nil, fmt.Errorf("%w: truncated payload: %d of %d bytes", baseErr, len(payload), length)
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, fmt.Errorf("%w: checksum mismatch: %08x != %08x%s", baseErr, got, sum, at)
	}
	return payload, nil
}

// ExpectEOF fails with baseErr if r still has bytes — the trailing-data
// check for artifacts where the block must be the whole input.
func ExpectEOF(r io.Reader, baseErr error) error {
	// io.ReadFull rather than a bare Read: a reader may legally return
	// (0, nil), which would let trailing bytes slip past a single Read.
	switch _, err := io.ReadFull(r, make([]byte, 1)); err {
	case io.EOF:
		return nil // clean end of input
	case nil:
		if pos, ok := r.(positioned); ok {
			return fmt.Errorf("%w: trailing data after payload (at byte %d)", baseErr, pos.Offset()-1)
		}
		return fmt.Errorf("%w: trailing data after payload", baseErr)
	default:
		return err // genuine reader I/O failure, not a format error
	}
}

// Writer accumulates a payload. bytes.Buffer writes cannot fail, so the
// emit methods return nothing; the same logical state always encodes to
// the same bytes.
type Writer struct {
	buf bytes.Buffer
}

// Bytes returns the accumulated payload.
func (p *Writer) Bytes() []byte { return p.buf.Bytes() }

func (p *Writer) U32(v uint32) {
	p.buf.Write(binary.LittleEndian.AppendUint32(nil, v))
}

func (p *Writer) U64(v uint64) {
	p.buf.Write(binary.LittleEndian.AppendUint64(nil, v))
}

func (p *Writer) F64(v float64) { p.U64(math.Float64bits(v)) }

func (p *Writer) Bool(v bool) {
	if v {
		p.buf.WriteByte(1)
	} else {
		p.buf.WriteByte(0)
	}
}

func (p *Writer) Str(s string) {
	p.U32(uint32(len(s)))
	p.buf.WriteString(s)
}

// Reader is a strict bounds-checked cursor over a payload. The first
// failure latches err and turns every later read into a no-op, so
// section decoders can run unconditionally and the error is checked once
// (Err, or Finish which also rejects unparsed leftover bytes). Every
// failure wraps the base error given to NewReader.
type Reader struct {
	buf  []byte
	pos  int
	err  error
	base error
}

// NewReader returns a Reader over payload whose failures wrap baseErr.
func NewReader(payload []byte, baseErr error) *Reader {
	return &Reader{buf: payload, base: baseErr}
}

// Err returns the latched failure, if any.
func (d *Reader) Err() error { return d.err }

// Fail latches a failure wrapping the base error; the first one wins.
func (d *Reader) Fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: "+format, append([]any{d.base}, args...)...)
	}
}

// Finish returns the latched failure, or an error if payload bytes
// remain unparsed.
func (d *Reader) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.pos != len(d.buf) {
		return fmt.Errorf("%w: %d unparsed payload bytes", d.base, len(d.buf)-d.pos)
	}
	return nil
}

func (d *Reader) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.buf)-d.pos < n {
		d.Fail("truncated at byte %d (need %d more)", d.pos, n)
		return nil
	}
	b := d.buf[d.pos : d.pos+n]
	d.pos += n
	return b
}

func (d *Reader) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *Reader) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Int reads a u64 and rejects values that do not fit an int.
func (d *Reader) Int(what string) int {
	v := d.U64()
	if v > math.MaxInt64 {
		d.Fail("%s out of range: %d", what, v)
		return 0
	}
	return int(int64(v))
}

func (d *Reader) F64() float64 { return math.Float64frombits(d.U64()) }

func (d *Reader) Bool() bool {
	b := d.take(1)
	if b == nil {
		return false
	}
	switch b[0] {
	case 0:
		return false
	case 1:
		return true
	default:
		d.Fail("invalid bool byte %d at %d", b[0], d.pos-1)
		return false
	}
}

func (d *Reader) Str() string {
	n := d.U32()
	return string(d.take(int(n)))
}

// Count reads an element count and sanity-checks it against the bytes
// remaining (minSize is the smallest possible encoding of one element),
// so a forged count cannot drive a huge preallocation.
func (d *Reader) Count(what string, minSize int) int {
	n := int(d.U32())
	if d.err == nil && n*minSize > len(d.buf)-d.pos {
		d.Fail("%s count %d exceeds remaining payload", what, n)
		return 0
	}
	return n
}
