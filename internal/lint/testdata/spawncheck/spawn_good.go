package serve

import "sync"

// fanOut joins through the WaitGroup.
func fanOut(items []int) {
	var wg sync.WaitGroup
	for range items {
		wg.Add(1)
		go func() { wg.Done() }()
	}
	wg.Wait()
}

// compute joins through the result channel: the goroutine sends, the
// function receives.
func compute() int {
	ch := make(chan int, 1)
	go func() { ch <- 42 }()
	return <-ch
}

// detached documents its lifecycle contract in the allow reason.
func detached() {
	//lint:allow spawncheck fixture detached worker: lifecycle documented here
	go work(nil)
}
