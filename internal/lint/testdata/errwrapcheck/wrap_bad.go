package snapfmt

import (
	"errors"
	"fmt"
)

var ErrBadCatalog = errors.New("bad catalog")

// decodeHeader is the pre-fix decode shape: %v stringifies the sentinel,
// so errors.Is(err, ErrBadCatalog) stops matching one frame up.
func decodeHeader(line string) error {
	return fmt.Errorf("catalog header %q: %v", line, ErrBadCatalog) // want "use %w so errors.Is"
}

func decodeBody(err error) error {
	return fmt.Errorf("body: %s", ErrBadCatalog) // want "formatted with %s"
}
