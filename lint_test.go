package prodsynth

import (
	"testing"

	"prodsynth/internal/lint"
)

// TestVetsynthSelfScan runs the full vetsynth analyzer suite over the
// module: every invariant the suite encodes — injectable clocks,
// context-first entry points, I/O-free shard critical sections,
// %w-wrapped sentinels, compat-shim markers, join-guarded goroutines —
// holds for the tree as committed. A finding here reproduces exactly what
// `go run ./cmd/vetsynth ./...` would print in CI.
func TestVetsynthSelfScan(t *testing.T) {
	pkgs, err := lint.LoadModule(".")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(pkgs) < 5 {
		t.Fatalf("loaded only %d packages — self-scan is not covering the tree", len(pkgs))
	}
	for _, d := range lint.RunAnalyzers(pkgs, lint.All()) {
		t.Errorf("%s", d)
	}
}
