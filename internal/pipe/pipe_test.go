package pipe

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func ints(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestFromSliceCollect(t *testing.T) {
	got, err := Collect(context.Background(), FromSlice(ints(5)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("got %v", got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestMapLazyAndOrdered(t *testing.T) {
	var calls int
	stage := Map(func(_ context.Context, i int) (int, error) {
		calls++
		return i * 10, nil
	})
	src := stage(FromSlice(ints(4)))
	if calls != 0 {
		t.Fatalf("Map did work before the first pull: %d calls", calls)
	}
	v, ok, err := src.Next(context.Background())
	if err != nil || !ok || v != 0 {
		t.Fatalf("first pull: %v %v %v", v, ok, err)
	}
	if calls != 1 {
		t.Fatalf("one pull should mean one call, got %d", calls)
	}
	rest, err := Collect(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{10, 20, 30}
	for i, v := range rest {
		if v != want[i] {
			t.Fatalf("rest = %v, want %v", rest, want)
		}
	}
}

func TestMapErrorEndsStage(t *testing.T) {
	boom := errors.New("boom")
	stage := Map(func(_ context.Context, i int) (int, error) {
		if i == 2 {
			return 0, boom
		}
		return i, nil
	})
	src := stage(FromSlice(ints(5)))
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, ok, err := src.Next(ctx); !ok || err != nil {
			t.Fatalf("pull %d: ok=%v err=%v", i, ok, err)
		}
	}
	if _, ok, err := src.Next(ctx); ok || !errors.Is(err, boom) {
		t.Fatalf("want boom, got ok=%v err=%v", ok, err)
	}
	// Spent after the terminal error.
	if _, ok, err := src.Next(ctx); ok || err != nil {
		t.Fatalf("spent source returned ok=%v err=%v", ok, err)
	}
}

// TestParMapDeterministicOrder is the determinism contract: same output
// sequence for every worker count, even when later items finish first.
func TestParMapDeterministicOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		stage := ParMap(workers, func(_ context.Context, i int) (int, error) {
			// Earlier items sleep longer, so with >1 worker completions
			// arrive out of order.
			time.Sleep(time.Duration(50-i%50) * time.Microsecond)
			return i * 2, nil
		})
		got, err := Collect(context.Background(), stage(FromSlice(ints(200))))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 200 {
			t.Fatalf("workers=%d: len=%d", workers, len(got))
		}
		for i, v := range got {
			if v != i*2 {
				t.Fatalf("workers=%d: got[%d]=%d, want %d", workers, i, v, i*2)
			}
		}
	}
}

// TestParMapErrorPosition: the error surfaced is the erroring item
// earliest in input order that the consumer reaches, and the stage tears
// itself down (no goroutine leak) without delivering later items.
func TestParMapErrorPosition(t *testing.T) {
	baseline := runtime.NumGoroutine()
	boom := errors.New("boom")
	stage := ParMap(4, func(_ context.Context, i int) (int, error) {
		if i == 3 {
			return 0, fmt.Errorf("item %d: %w", i, boom)
		}
		return i, nil
	})
	src := stage(FromSlice(ints(100)))
	ctx := context.Background()
	var got []int
	for {
		v, ok, err := src.Next(ctx)
		if err != nil {
			if !errors.Is(err, boom) || err.Error() != "item 3: boom" {
				t.Fatalf("err = %v", err)
			}
			break
		}
		if !ok {
			t.Fatal("stage ended without the error")
		}
		got = append(got, v)
	}
	if len(got) != 3 {
		t.Fatalf("items before the error: %v", got)
	}
	waitGoroutines(t, baseline)
}

func TestParMapCancelNoLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	release := make(chan struct{})
	stage := ParMap(4, func(_ context.Context, i int) (int, error) {
		started.Add(1)
		<-release
		return i, nil
	})
	src := stage(FromSlice(ints(64)))
	go func() {
		for started.Load() == 0 {
			time.Sleep(time.Millisecond)
		}
		cancel()
		close(release)
	}()
	for {
		_, ok, err := src.Next(ctx)
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v", err)
			}
			break
		}
		if !ok {
			t.Fatal("ended cleanly despite cancellation")
		}
	}
	waitGoroutines(t, baseline)
}

// TestBufferOverlap proves the stage boundary actually decouples producer
// and consumer: with depth 1 the producer gets two items ahead (one in
// the buffer, one in hand) while the consumer holds the first.
func TestBufferOverlap(t *testing.T) {
	produced := make(chan int, 16)
	stage := Map(func(_ context.Context, i int) (int, error) {
		produced <- i
		return i, nil
	})
	src := Buffer[int](1)(stage(FromSlice(ints(8))))
	ctx := context.Background()
	v, ok, err := src.Next(ctx)
	if err != nil || !ok || v != 0 {
		t.Fatalf("first pull: %v %v %v", v, ok, err)
	}
	// Without pulling again, the producer should run ahead: item 1 into
	// the buffer slot, item 2 blocked in hand. Item 3 must NOT be
	// produced (bounded readahead).
	deadline := time.After(2 * time.Second)
	seen := map[int]bool{0: true}
	for len(seen) < 3 {
		select {
		case i := <-produced:
			seen[i] = true
		case <-deadline:
			t.Fatalf("producer did not run ahead; produced %v", seen)
		}
	}
	select {
	case i := <-produced:
		t.Fatalf("producer ran unboundedly ahead: produced %d", i)
	case <-time.After(50 * time.Millisecond):
	}
	rest, err := Collect(ctx, src)
	if err != nil || len(rest) != 7 {
		t.Fatalf("rest=%v err=%v", rest, err)
	}
}

func TestBufferDeliversTerminalError(t *testing.T) {
	boom := errors.New("boom")
	stage := Map(func(_ context.Context, i int) (int, error) {
		if i == 2 {
			return 0, boom
		}
		return i, nil
	})
	src := Buffer[int](4)(stage(FromSlice(ints(8))))
	got, err := Collect(context.Background(), src)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v (got %v)", err, got)
	}
}

func TestBufferCancelNoLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	src := Buffer[int](0)(FromSlice(ints(1000)))
	if _, ok, err := src.Next(ctx); !ok || err != nil {
		t.Fatalf("first pull: ok=%v err=%v", ok, err)
	}
	cancel()
	if _, ok, err := src.Next(ctx); ok || !errors.Is(err, context.Canceled) {
		t.Fatalf("after cancel: ok=%v err=%v", ok, err)
	}
	waitGoroutines(t, baseline)
}

func TestFromChan(t *testing.T) {
	ch := make(chan int, 3)
	ch <- 7
	ch <- 8
	close(ch)
	got, err := Collect(context.Background(), FromChan(ch))
	if err != nil || len(got) != 2 || got[0] != 7 || got[1] != 8 {
		t.Fatalf("got %v err %v", got, err)
	}

	blocked := make(chan int)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, ok, err := FromChan(blocked).Next(ctx); ok || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled receive: ok=%v err=%v", ok, err)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Add(3)
	g.Add(2)
	g.Add(-4)
	if g.Current() != 1 || g.Peak() != 5 {
		t.Fatalf("cur=%d peak=%d", g.Current(), g.Peak())
	}
	var nilGauge *Gauge
	nilGauge.Add(10) // must not panic
	if nilGauge.Current() != 0 || nilGauge.Peak() != 0 {
		t.Fatal("nil gauge not a no-op")
	}
}

// waitGoroutines waits for the goroutine count to drain back to (at most)
// the baseline, tolerating runtime background noise.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
}
