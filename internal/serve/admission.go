package serve

// admission is the semaphore-based admission controller in front of the
// synthesis endpoints: at most max requests hold a slot at once, and a
// request that cannot get a slot immediately is shed (the handler answers
// 429 with Retry-After) rather than queued — under overload the daemon
// stays responsive and pushes the retry decision to the caller, instead
// of building an invisible queue whose latency grows without bound.
//
// Health, readiness, metrics, and reload are never gated: operability
// endpoints must answer precisely when the daemon is busiest.
type admission struct {
	slots    chan struct{}
	inflight *Gauge
	shed     *Counter
}

func newAdmission(max int, inflight *Gauge, shed *Counter) *admission {
	return &admission{slots: make(chan struct{}, max), inflight: inflight, shed: shed}
}

// tryAcquire claims a slot without blocking; false means shed.
func (a *admission) tryAcquire() bool {
	select {
	case a.slots <- struct{}{}:
		a.inflight.Inc()
		return true
	default:
		a.shed.Inc()
		return false
	}
}

// release returns a slot claimed by tryAcquire.
func (a *admission) release() {
	a.inflight.Dec()
	<-a.slots
}
