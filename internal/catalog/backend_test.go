package catalog

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func testStore(t *testing.T, shards int) *Store {
	t.Helper()
	st := NewStoreShards(shards)
	for _, c := range []Category{
		{ID: "c-drives", Name: "Hard Drives", TopLevel: "Electronics", Schema: Schema{Attributes: []Attribute{
			{Name: AttrUPC, Kind: KindIdentifier},
			{Name: "Brand", Kind: KindCategorical},
			{Name: "Capacity", Kind: KindNumeric, Unit: "GB"},
		}}},
		{ID: "c-phones", Name: "Phones", TopLevel: "Electronics", Schema: Schema{Attributes: []Attribute{
			{Name: AttrUPC, Kind: KindIdentifier},
			{Name: AttrMPN, Kind: KindIdentifier},
			{Name: "Brand", Kind: KindCategorical},
		}}},
		{ID: "c-tvs", Name: "TVs", TopLevel: "Electronics", Schema: Schema{Attributes: []Attribute{
			{Name: AttrMPN, Kind: KindIdentifier},
			{Name: "Size", Kind: KindNumeric, Unit: "in"},
		}}},
	} {
		if err := st.AddCategory(c); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 12; i++ {
		cat := []string{"c-drives", "c-phones", "c-tvs"}[i%3]
		keyAttr := AttrUPC
		if cat == "c-tvs" {
			keyAttr = AttrMPN
		}
		p := Product{
			ID:         fmt.Sprintf("p-%02d", i),
			CategoryID: cat,
			Spec:       Spec{{Name: keyAttr, Value: fmt.Sprintf("key-%02d", i)}},
		}
		if err := st.AddProduct(p); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// Shard snapshots must partition the store: merging them back yields the
// exact global snapshot, byte for byte, for any shard count.
func TestShardSnapshotsMergeToGlobal(t *testing.T) {
	for _, shards := range []int{1, 3, 8} {
		st := testStore(t, shards)
		if got := st.NumShards(); got != shards {
			t.Fatalf("NumShards = %d, want %d", got, shards)
		}
		var parts []Snapshot
		for i := 0; i < st.NumShards(); i++ {
			parts = append(parts, st.ShardSnapshot(i))
		}
		merged := MergeSnapshots(parts)
		var want, got bytes.Buffer
		if err := EncodeStore(&want, st); err != nil {
			t.Fatal(err)
		}
		if err := EncodeSnapshot(&got, merged); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Errorf("shards=%d: merged shard snapshots differ from the global snapshot", shards)
		}
		// And the merge must load: a store rebuilt from it matches too.
		st2, err := FromSnapshotShards(merged, shards)
		if err != nil {
			t.Fatalf("shards=%d: FromSnapshotShards: %v", shards, err)
		}
		var rt bytes.Buffer
		if err := EncodeStore(&rt, st2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), rt.Bytes()) {
			t.Errorf("shards=%d: snapshot round-trip through shard merge not identical", shards)
		}
	}
}

// The backend shard count must not leak into snapshot bytes: stores with
// different shard counts holding the same logical state encode identically.
func TestSnapshotBytesIndependentOfShardCount(t *testing.T) {
	var first []byte
	for _, shards := range []int{1, 2, 8} {
		var buf bytes.Buffer
		if err := EncodeStore(&buf, testStore(t, shards)); err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = buf.Bytes()
		} else if !bytes.Equal(first, buf.Bytes()) {
			t.Fatalf("shards=%d: snapshot bytes differ from shards=1", shards)
		}
	}
}

// observerLog records mutations the way the durable log does.
type observerLog struct {
	mu   sync.Mutex
	recs []ReplayRecord
}

func (l *observerLog) ObserveCategory(c Category) {
	l.mu.Lock()
	defer l.mu.Unlock()
	cc := c
	l.recs = append(l.recs, ReplayRecord{Category: &cc})
}

func (l *observerLog) ObserveProduct(version uint64, ownsKey bool, p Product) {
	l.mu.Lock()
	defer l.mu.Unlock()
	cp := p
	l.recs = append(l.recs, ReplayRecord{Product: &cp, Version: version, OwnsKey: ownsKey})
}

// Replaying an observed mutation sequence into an empty store must
// reproduce the original byte for byte — including shadowed keys, where
// replay order alone cannot decide ownership.
func TestObserverReplayRoundTrip(t *testing.T) {
	st := NewStoreShards(4)
	var log observerLog
	st.SetObserver(&log)

	schema := Schema{Attributes: []Attribute{{Name: AttrUPC, Kind: KindIdentifier}}}
	for _, id := range []string{"c-a", "c-b"} {
		if err := st.AddCategory(Category{ID: id, Name: id, TopLevel: "T", Schema: schema}); err != nil {
			t.Fatal(err)
		}
	}
	// p-1 claims the shared key first; p-2 in another category is shadowed.
	for _, p := range []Product{
		{ID: "p-1", CategoryID: "c-a", Spec: Spec{{Name: AttrUPC, Value: "shared"}}},
		{ID: "p-2", CategoryID: "c-b", Spec: Spec{{Name: AttrUPC, Value: "shared"}}},
		{ID: "p-3", CategoryID: "c-a", Spec: Spec{{Name: AttrUPC, Value: "solo"}}},
	} {
		if _, err := st.AddProductOutcome(p); err != nil {
			t.Fatal(err)
		}
	}

	got := NewStoreShards(4)
	for _, rec := range log.recs {
		if err := got.Replay(rec); err != nil {
			t.Fatal(err)
		}
	}
	var want, have bytes.Buffer
	if err := EncodeStore(&want, st); err != nil {
		t.Fatal(err)
	}
	if err := EncodeStore(&have, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), have.Bytes()) {
		t.Error("replayed store differs from original")
	}

	// Replay is idempotent: applying the whole log again is a no-op.
	for _, rec := range log.recs {
		if err := got.Replay(rec); err != nil {
			t.Fatalf("second replay: %v", err)
		}
	}
	have.Reset()
	if err := EncodeStore(&have, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), have.Bytes()) {
		t.Error("double replay changed the store")
	}

	// A version gap is corruption, not something to paper over.
	gap := ReplayRecord{Product: &Product{ID: "p-9", CategoryID: "c-a"}, Version: 99}
	if err := got.Replay(gap); err == nil {
		t.Error("Replay accepted a version gap")
	}
}

// Replay must reject records that do not pass the store's own
// validation: unknown categories, schema violations, duplicate IDs.
func TestReplayRejectsInvalidRecords(t *testing.T) {
	st := NewStoreShards(2)
	schema := Schema{Attributes: []Attribute{{Name: AttrUPC, Kind: KindIdentifier}}}
	if err := st.AddCategory(Category{ID: "c", Name: "c", TopLevel: "T", Schema: schema}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		rec  ReplayRecord
	}{
		{"empty", ReplayRecord{}},
		{"unknown category", ReplayRecord{Product: &Product{ID: "p", CategoryID: "nope"}, Version: 1}},
		{"schema violation", ReplayRecord{Product: &Product{ID: "p", CategoryID: "c", Spec: Spec{{Name: "Ghost", Value: "x"}}}, Version: 1}},
		{"keyless ownership claim", ReplayRecord{Product: &Product{ID: "p", CategoryID: "c"}, Version: 1, OwnsKey: true}},
	}
	for _, tc := range cases {
		if err := st.Replay(tc.rec); err == nil {
			t.Errorf("%s: Replay accepted the record", tc.name)
		}
	}
	if err := st.Replay(ReplayRecord{Product: &Product{ID: "p", CategoryID: "c"}, Version: 1}); err != nil {
		t.Fatal(err)
	}
	dup := ReplayRecord{Product: &Product{ID: "p", CategoryID: "c"}, Version: 2}
	if err := st.Replay(dup); !errors.Is(err, ErrDuplicateProduct) {
		t.Errorf("duplicate ID replay: err = %v, want ErrDuplicateProduct", err)
	}
}
