package main

import (
	"context"
	"fmt"
	"io"
	"time"

	"prodsynth/internal/core"
	"prodsynth/internal/experiments"
	"prodsynth/internal/fetch"
	"prodsynth/internal/fusion"
	"prodsynth/internal/offer"
)

// runFaultReplay exercises the resilience layer end to end on the env's
// incoming offers, failing loudly on any deviation so the CI smoke step
// catches regressions:
//
//   - recovery: every page fetch fails exactly twice and the 3-attempt
//     policy recovers it — output must be byte-identical to the clean
//     one-shot run and the counters must match the schedule exactly;
//   - host outage: the busiest merchant host is hard down — its offers
//     must synthesize feed-only and be named in the report, the per-host
//     breaker must trip, and every other host must be untouched.
//
// Both scenarios run on a FakeClock, so backoff and breaker cooldowns
// cost no wall time.
func runFaultReplay(w io.Writer, env *experiments.Env) error {
	ctx := context.Background()
	offers := env.Dataset.IncomingOffers
	inner := core.MapFetcher(env.Dataset.Pages)
	fmt.Fprintf(w, "## fault injection — %d offers\n\n", len(offers))

	// Scenario 1: transient faults, retries recover everything.
	clock := fetch.NewFakeClock()
	res := fetch.NewResilient(fetch.NewFaulty(inner, fetch.FailFirst(2), clock), fetch.Policy{
		MaxAttempts: 3,
		BackoffBase: 50 * time.Millisecond,
		BackoffMax:  time.Second,
		JitterSeed:  1,
		Clock:       clock,
	})
	run, err := core.RunRuntime(ctx, env.Dataset.Catalog, env.Offline, offers, res, env.Config)
	if err != nil {
		return fmt.Errorf("fault replay (recovery): %w", err)
	}
	c := run.Fetch.Counters
	verdict := productsVerdict(run.Products, env.Runtime.Products)
	fmt.Fprintf(w, "# recovery: every fetch fails twice, 3-attempt policy\n")
	fmt.Fprintf(w, "#   %s; simulated backoff %v\n", run.Fetch, clock.Slept().Round(time.Millisecond))
	fmt.Fprintf(w, "#   output vs clean one-shot run: %s\n\n", verdict)
	if verdict != "IDENTICAL" {
		return fmt.Errorf("fault replay (recovery): %s", verdict)
	}
	if c.Attempted == 0 {
		return fmt.Errorf("fault replay (recovery): no fetches attempted")
	}
	want := fetch.Counters{Attempted: c.Attempted, Attempts: 3 * c.Attempted, Retried: c.Attempted, Recovered: c.Attempted}
	if c != want {
		return fmt.Errorf("fault replay (recovery): counters %+v, want %+v", c, want)
	}
	if run.Fetch.Degraded() {
		return fmt.Errorf("fault replay (recovery): %d offers degraded to feed-only, want none", len(run.Fetch.FeedOnly))
	}

	// Scenario 2: one host hard down, breaker trips, lenient mode
	// degrades exactly that host's offers.
	down, downCount := busiestHost(offers)
	clock = fetch.NewFakeClock()
	res = fetch.NewResilient(fetch.NewFaulty(inner, fetch.HostOutage(down), clock), fetch.Policy{
		MaxAttempts:      2,
		BackoffBase:      50 * time.Millisecond,
		BackoffMax:       time.Second,
		JitterSeed:       1,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Hour,
		Clock:            clock,
	})
	run, err = core.RunRuntime(ctx, env.Dataset.Catalog, env.Offline, offers, res, env.Config)
	if err != nil {
		return fmt.Errorf("fault replay (host outage): %w", err)
	}
	rep := run.Fetch
	fmt.Fprintf(w, "# host outage: %s down (%d offers), 2-attempt policy, breaker threshold 3\n", down, downCount)
	fmt.Fprintf(w, "#   %s\n", rep)
	fmt.Fprintf(w, "#   %d products still synthesized from the healthy hosts\n\n", len(run.Products))
	if got := len(rep.FeedOnly); got != downCount {
		return fmt.Errorf("fault replay (host outage): %d offers feed-only, want %d", got, downCount)
	}
	if rep.GaveUp != downCount {
		return fmt.Errorf("fault replay (host outage): %d operations gave up, want %d", rep.GaveUp, downCount)
	}
	if downCount >= 3 && rep.BreakerRejected == 0 {
		return fmt.Errorf("fault replay (host outage): breaker never rejected despite %d offers on the down host", downCount)
	}
	if len(run.Products) == 0 {
		return fmt.Errorf("fault replay (host outage): no products synthesized")
	}
	return nil
}

// busiestHost returns the host serving the most offer URLs (smallest host
// string on ties, so the scenario is deterministic for a fixed dataset).
func busiestHost(offers []offer.Offer) (string, int) {
	counts := make(map[string]int)
	for _, o := range offers {
		if o.URL != "" {
			counts[fetch.Host(o.URL)]++
		}
	}
	var best string
	bestN := 0
	for h, n := range counts {
		if n > bestN || (n == bestN && h < best) {
			best, bestN = h, n
		}
	}
	return best, bestN
}

// productsVerdict compares two synthesized-product lists field by field
// and renders the equivalence verdict used by the replay reports.
func productsVerdict(got, want []fusion.Synthesized) string {
	if len(got) != len(want) {
		return fmt.Sprintf("MISMATCH: %d vs %d products", len(got), len(want))
	}
	for i := range want {
		a, b := got[i], want[i]
		if a.Key != b.Key || a.KeyAttr != b.KeyAttr || a.CategoryID != b.CategoryID ||
			a.Spec.String() != b.Spec.String() {
			return fmt.Sprintf("MISMATCH at product %d: %s vs %s", i, a.Key, b.Key)
		}
	}
	return "IDENTICAL"
}
