package match

import (
	"sync"
	"sync/atomic"

	"prodsynth/internal/catalog"
	"prodsynth/internal/text"
)

// Registry is a shared, process-wide cache of per-category matching state:
// the inverted TitleIndex and the linear-scan token cache. Before it
// existed, every worker goroutine of every Matcher.Run call rebuilt both
// from scratch — W workers × C categories redundant builds per run, and
// the whole cost again on the next run. The registry builds each category
// exactly once (sync.Once per entry) no matter how many goroutines race
// for it, and keeps the result warm across Matcher.Run calls, so repeated
// matching against the same catalog — the batch-synthesis and serving
// workloads — pays the build cost only on first touch.
//
// Entries are validated against catalog.Store.CategoryVersion on every
// acquisition: when Store.AddProduct bumps a category's version (as
// System.AddToCatalog does), the stale entry is replaced on the next
// lookup. In-flight matches keep the snapshot they started with.
//
// All methods are safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	entries map[registryKey]*registryEntry
	builds  atomic.Int64
}

type registryKey struct {
	store    *catalog.Store
	category string
}

// registryEntry caches one category's matching state at one store version.
// The two representations build lazily and independently: a purely indexed
// workload never pays for the linear token cache and vice versa.
type registryEntry struct {
	version uint64

	idxOnce sync.Once
	index   *TitleIndex

	linOnce sync.Once
	linear  []productTokens
}

// DefaultRegistry is the process-wide registry used by Matcher when no
// explicit Registry is set.
var DefaultRegistry = NewRegistry()

// NewRegistry returns an empty registry. Most callers should use
// DefaultRegistry; private registries exist for tests and for callers that
// need independent lifecycles.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[registryKey]*registryEntry)}
}

// entry returns the live cache entry for (store, category), replacing any
// entry built at an older store version. The comparison is strictly
// "older": a goroutine whose version read predates a concurrent AddProduct
// must not evict the newer entry another goroutine already installed, or
// the two would thrash rebuilding each other's work.
func (r *Registry) entry(store *catalog.Store, category string) *registryEntry {
	v := store.CategoryVersion(category)
	k := registryKey{store: store, category: category}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.entries[k]
	if e == nil || e.version < v {
		e = &registryEntry{version: v}
		r.entries[k] = e
	}
	return e
}

// TitleIndex returns the category's inverted title index, building it on
// first use.
func (r *Registry) TitleIndex(store *catalog.Store, category string) *TitleIndex {
	e := r.entry(store, category)
	e.idxOnce.Do(func() {
		e.index = NewTitleIndex(store.ProductsInCategory(category))
		r.builds.Add(1)
	})
	return e.index
}

// linearTokens returns the category's linear-scan token cache, building it
// on first use.
func (r *Registry) linearTokens(store *catalog.Store, category string) []productTokens {
	e := r.entry(store, category)
	e.linOnce.Do(func() {
		for _, p := range store.ProductsInCategory(category) {
			toks := make(map[string]bool)
			for _, av := range p.Spec {
				for _, t := range text.DefaultTokenizer.Tokenize(av.Value) {
					toks[t] = true
				}
			}
			e.linear = append(e.linear, productTokens{id: p.ID, tokens: toks})
		}
		r.builds.Add(1)
	})
	return e.linear
}

// Builds reports how many category builds (index or token cache) the
// registry has performed — the regression surface for "build once per
// category regardless of worker count".
func (r *Registry) Builds() int64 { return r.builds.Load() }

// Invalidate drops the cached entry for one (store, category) pair.
// Version validation makes this unnecessary after Store.AddProduct; it
// exists for callers that mutate matching-relevant state the store cannot
// see.
func (r *Registry) Invalidate(store *catalog.Store, category string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.entries, registryKey{store: store, category: category})
}

// ReleaseStore drops every entry of one store, releasing the memory (and
// the store reference) held for it. Call when a store goes out of use in a
// long-lived process.
func (r *Registry) ReleaseStore(store *catalog.Store) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for k := range r.entries {
		if k.store == store {
			delete(r.entries, k)
		}
	}
}
