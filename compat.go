// Compat: the v1 entry points, kept as thin shims over the Model-first v2
// API so existing callers keep compiling. Every function in this file is
// deprecated — new code should follow the migration table in the package
// documentation. CI enforces that each shim here keeps its "Deprecated:"
// doc marker.
package prodsynth

import "context"

// New creates a System over a catalog with no Model: the v1 lifecycle,
// where Learn mutates the System into the learned state and synthesis
// fails with ErrNotLearned until it has.
//
// Deprecated: use Learn to obtain a Model and NewSystem to build the
// System from it, which makes the unlearned state unrepresentable.
func New(store *Catalog, cfg Config) *System {
	return NewSystem(store, nil, WithConfig(cfg))
}

// Learn runs the offline learning phase and installs the learned model
// into the System.
//
// Deprecated: use the package-level Learn, which is context-aware and
// returns the learned state as an immutable, serializable Model; install
// it with System.Use or construct the System from it with NewSystem.
func (s *System) Learn(historical []Offer, pages PageFetcher) error {
	//lint:allow ctxfirst deprecated v1 shim: the v1 signature has no ctx to forward; callers wanting cancellation migrate to the package-level Learn
	m, err := Learn(context.Background(), s.store, historical, pages, WithConfig(s.cfg))
	if err != nil {
		return err
	}
	s.Use(m)
	return nil
}

// Stats returns the offline learning statistics. Zero before Learn.
//
// Deprecated: use Model().Stats(), or keep the *Model Learn returned.
func (s *System) Stats() OfflineStats {
	m := s.Model()
	if m == nil {
		return OfflineStats{}
	}
	return m.Stats()
}

// Correspondences returns every selected attribute correspondence.
// Nil before Learn.
//
// Deprecated: use Model().Correspondences().
func (s *System) Correspondences() []Correspondence {
	m := s.Model()
	if m == nil {
		return nil
	}
	return m.Correspondences()
}

// ScoredCandidates returns every candidate correspondence with its
// classifier score, best first. Nil before Learn.
//
// Deprecated: use Model().ScoredCandidates().
func (s *System) ScoredCandidates() []Correspondence {
	m := s.Model()
	if m == nil {
		return nil
	}
	return m.ScoredCandidates()
}

// Synthesize runs the runtime pipeline over incoming offers.
// Learn must have succeeded first; ErrNotLearned otherwise.
//
// Deprecated: use SynthesizeContext, which honors cancellation.
func (s *System) Synthesize(incoming []Offer, pages PageFetcher) (*Result, error) {
	//lint:allow ctxfirst deprecated v1 shim: the v1 signature has no ctx to forward; callers wanting cancellation migrate to SynthesizeContext
	return s.SynthesizeContext(context.Background(), incoming, pages)
}

// SynthesizeBatches runs the runtime pipeline over a sequence of offer
// batches. Learn must have succeeded first; ErrNotLearned otherwise.
//
// Deprecated: use SynthesizeBatchesContext, which honors cancellation.
func (s *System) SynthesizeBatches(batches [][]Offer, pages PageFetcher) (*BatchResult, error) {
	//lint:allow ctxfirst deprecated v1 shim: the v1 signature has no ctx to forward; callers wanting cancellation migrate to SynthesizeBatchesContext
	return s.SynthesizeBatchesContext(context.Background(), batches, pages)
}
