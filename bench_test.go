package prodsynth

// The benchmarks below regenerate every table and figure of the paper's
// evaluation (§5) — one benchmark per artifact — plus the ablation sweeps
// from DESIGN.md and end-to-end phase benchmarks. Quality numbers are
// attached to each benchmark via b.ReportMetric, so a single
//
//	go test -bench=. -benchmem
//
// run prints both the cost (ns/op, allocs) and the reproduced metrics
// (precision, coverage) side by side. EXPERIMENTS.md records a reference
// run against the paper's reported values.

import (
	"sync"
	"testing"

	"prodsynth/internal/core"
	"prodsynth/internal/experiments"
	"prodsynth/internal/synth"
)

// benchGen is the marketplace used by the benchmarks: large enough for the
// paper's effects to be visible, small enough for -bench runs to stay
// interactive.
var benchGen = synth.Config{
	Seed:                1,
	CategoriesPerDomain: 4,
	ProductsPerCategory: 60,
	Merchants:           60,
}

var (
	benchEnvOnce sync.Once
	benchEnvVal  *experiments.Env
	benchEnvErr  error
)

func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		benchEnvVal, benchEnvErr = experiments.Setup(benchGen, core.Config{})
	})
	if benchEnvErr != nil {
		b.Fatal(benchEnvErr)
	}
	return benchEnvVal
}

// BenchmarkTable2EndToEnd reproduces Table 2: full pipeline quality.
func BenchmarkTable2EndToEnd(b *testing.B) {
	env := benchEnv(b)
	var r experiments.Table2Result
	for i := 0; i < b.N; i++ {
		r = experiments.Table2(env)
	}
	b.ReportMetric(r.AttributePrec, "attr-precision")
	b.ReportMetric(r.ProductPrec, "product-precision")
	b.ReportMetric(float64(r.Products), "products")
	b.ReportMetric(float64(r.AttributePairs), "attribute-pairs")
}

// BenchmarkTable3PerCategory reproduces Table 3: per top-level category.
func BenchmarkTable3PerCategory(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		rs := experiments.Table3(env)
		for _, r := range rs {
			b.ReportMetric(r.AvgAttrsPerProduct(), shorten(r.TopLevel)+"-avg-attrs")
			b.ReportMetric(r.ProductPrecision(), shorten(r.TopLevel)+"-product-prec")
		}
	}
}

// BenchmarkTable4Recall reproduces Table 4: recall by offer-set size.
func BenchmarkTable4Recall(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		heavy, light := experiments.Table4(env)
		b.ReportMetric(heavy.AttributeRecall, "recall-ge10")
		b.ReportMetric(light.AttributeRecall, "recall-lt10")
		b.ReportMetric(heavy.AttributePrecision, "precision-ge10")
		b.ReportMetric(light.AttributePrecision, "precision-lt10")
	}
}

// benchFigure runs one figure builder and reports each system's exact
// coverage at precision 0.85.
func benchFigure(b *testing.B, build func(*experiments.Env) (*experiments.Figure, error)) {
	env := benchEnv(b)
	var fig *experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = build(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, name := range fig.Names {
		b.ReportMetric(float64(fig.CoverageAt(name, 0.85)), "cov@0.85-"+shorten(name))
	}
}

func shorten(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch r {
		case ' ', '(', ')', '\t', '&', '§':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// BenchmarkFigure6SingleFeature reproduces Figure 6.
func BenchmarkFigure6SingleFeature(b *testing.B) { benchFigure(b, experiments.Figure6) }

// BenchmarkFigure7NoHistory reproduces Figure 7.
func BenchmarkFigure7NoHistory(b *testing.B) { benchFigure(b, experiments.Figure7) }

// BenchmarkFigure8Baselines reproduces Figure 8.
func BenchmarkFigure8Baselines(b *testing.B) { benchFigure(b, experiments.Figure8) }

// BenchmarkFigure9ComaDelta reproduces Figure 9.
func BenchmarkFigure9ComaDelta(b *testing.B) { benchFigure(b, experiments.Figure9) }

// BenchmarkAblationDropFeature sweeps drop-one-feature retraining.
func BenchmarkAblationDropFeature(b *testing.B) {
	env := benchEnv(b)
	var rows []experiments.AblationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.AblationDropFeature(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.Cov90), "cov@0.9-"+shorten(r.Name))
	}
}

// BenchmarkAblationFusion compares fusion strategies.
func BenchmarkAblationFusion(b *testing.B) {
	env := benchEnv(b)
	var rows []experiments.AblationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.AblationFusion(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Metric1, "attr-prec-"+shorten(r.Name))
	}
}

// BenchmarkAblationClusterKeys compares clustering key sets.
func BenchmarkAblationClusterKeys(b *testing.B) {
	env := benchEnv(b)
	var rows []experiments.AblationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.AblationClusterKeys(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Metric2, "products-"+shorten(r.Name))
	}
}

// BenchmarkOfflineLearning measures the offline phase alone on a fresh
// marketplace (generation excluded from the timed region).
func BenchmarkOfflineLearning(b *testing.B) {
	ds := synth.Generate(benchGen)
	fetcher := core.MapFetcher(ds.Pages)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunOffline(ds.Catalog, ds.HistoricalOffers, fetcher, core.Config{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(ds.HistoricalOffers))/float64(b.Elapsed().Seconds()/float64(b.N)), "offers/s")
}

// BenchmarkRuntimePipeline measures the runtime phase alone.
func BenchmarkRuntimePipeline(b *testing.B) {
	env := benchEnv(b)
	fetcher := core.MapFetcher(env.Dataset.Pages)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunRuntime(env.Dataset.Catalog, env.Offline, env.Dataset.IncomingOffers, fetcher, core.Config{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(env.Dataset.IncomingOffers))/float64(b.Elapsed().Seconds()/float64(b.N)), "offers/s")
}
