package catalog

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func hardDriveCategory() Category {
	return Category{
		ID:       "computing/hard-drives",
		Name:     "Hard Drives",
		TopLevel: "Computing",
		Schema: Schema{Attributes: []Attribute{
			{Name: "Brand", Kind: KindCategorical},
			{Name: "Capacity", Kind: KindNumeric, Unit: "GB"},
			{Name: "Speed", Kind: KindNumeric, Unit: "rpm"},
			{Name: "Interface", Kind: KindCategorical},
			{Name: AttrMPN, Kind: KindIdentifier},
			{Name: AttrUPC, Kind: KindIdentifier},
		}},
	}
}

func TestSchemaLookups(t *testing.T) {
	s := hardDriveCategory().Schema
	if !s.Has("Brand") || s.Has("Missing") {
		t.Error("Has wrong")
	}
	a, ok := s.Attribute("Capacity")
	if !ok || a.Unit != "GB" || a.Kind != KindNumeric {
		t.Errorf("Attribute(Capacity) = %+v, %v", a, ok)
	}
	if len(s.Names()) != 6 || s.Names()[0] != "Brand" {
		t.Errorf("Names = %v", s.Names())
	}
}

func TestSpecOperations(t *testing.T) {
	s := Spec{{Name: "Brand", Value: "Seagate"}}
	s = s.Set("Capacity", "500")
	s = s.Set("Brand", "Hitachi")
	if v, _ := s.Get("Brand"); v != "Hitachi" {
		t.Errorf("Get(Brand) = %q", v)
	}
	if v, _ := s.Get("Capacity"); v != "500" {
		t.Errorf("Get(Capacity) = %q", v)
	}
	if _, ok := s.Get("Missing"); ok {
		t.Error("Get(Missing) should be false")
	}
	if len(s) != 2 {
		t.Errorf("len = %d", len(s))
	}

	c := s.Clone()
	c.Set("Brand", "WD")
	if v, _ := s.Get("Brand"); v != "Hitachi" {
		t.Error("Clone did not isolate")
	}

	sorted := Spec{{Name: "Z", Value: "1"}, {Name: "A", Value: "2"}}.Sorted()
	if sorted[0].Name != "A" {
		t.Errorf("Sorted = %v", sorted)
	}
	if got := s.String(); got != "Brand=Hitachi; Capacity=500" {
		t.Errorf("String = %q", got)
	}
}

func TestProductKey(t *testing.T) {
	p := Product{Spec: Spec{{Name: AttrMPN, Value: "HDT725"}}}
	if k, ok := p.Key(); !ok || k != "HDT725" {
		t.Errorf("Key = %q, %v", k, ok)
	}
	p2 := Product{Spec: Spec{{Name: AttrUPC, Value: "505174"}, {Name: AttrMPN, Value: "HDT725"}}}
	if k, _ := p2.Key(); k != "505174" {
		t.Errorf("UPC should win, got %q", k)
	}
	p3 := Product{Spec: Spec{{Name: "Brand", Value: "x"}}}
	if _, ok := p3.Key(); ok {
		t.Error("no key expected")
	}
}

func TestStoreCategoryLifecycle(t *testing.T) {
	st := NewStore()
	cat := hardDriveCategory()
	if err := st.AddCategory(cat); err != nil {
		t.Fatal(err)
	}
	if err := st.AddCategory(cat); !errors.Is(err, ErrDuplicateCategory) {
		t.Errorf("duplicate err = %v", err)
	}
	got, ok := st.Category(cat.ID)
	if !ok || got.Name != "Hard Drives" {
		t.Errorf("Category = %+v, %v", got, ok)
	}
	if st.NumCategories() != 1 {
		t.Errorf("NumCategories = %d", st.NumCategories())
	}
	if len(st.Categories()) != 1 {
		t.Errorf("Categories = %v", st.Categories())
	}
}

func TestStoreCategoryIsolation(t *testing.T) {
	st := NewStore()
	cat := hardDriveCategory()
	if err := st.AddCategory(cat); err != nil {
		t.Fatal(err)
	}
	cat.Schema.Attributes[0].Name = "MUTATED"
	got, _ := st.Category(cat.ID)
	if got.Schema.Attributes[0].Name != "Brand" {
		t.Error("store schema aliased caller slice")
	}
}

func TestStoreProducts(t *testing.T) {
	st := NewStore()
	if err := st.AddCategory(hardDriveCategory()); err != nil {
		t.Fatal(err)
	}
	p := Product{
		ID:         "p1",
		CategoryID: "computing/hard-drives",
		Spec: Spec{
			{Name: "Brand", Value: "Seagate"},
			{Name: AttrMPN, Value: "ST3500"},
		},
	}
	if err := st.AddProduct(p); err != nil {
		t.Fatal(err)
	}
	if err := st.AddProduct(p); !errors.Is(err, ErrDuplicateProduct) {
		t.Errorf("duplicate product err = %v", err)
	}
	if err := st.AddProduct(Product{ID: "p2", CategoryID: "nope"}); !errors.Is(err, ErrUnknownCategory) {
		t.Errorf("unknown category err = %v", err)
	}
	bad := Product{ID: "p3", CategoryID: "computing/hard-drives",
		Spec: Spec{{Name: "NotInSchema", Value: "x"}}}
	if err := st.AddProduct(bad); !errors.Is(err, ErrSchemaViolation) {
		t.Errorf("schema violation err = %v", err)
	}

	got, ok := st.Product("p1")
	if !ok {
		t.Fatal("Product(p1) missing")
	}
	if v, _ := got.Spec.Get("Brand"); v != "Seagate" {
		t.Errorf("Brand = %q", v)
	}
	byKey, ok := st.ProductByKey("ST3500")
	if !ok || byKey.ID != "p1" {
		t.Errorf("ProductByKey = %+v, %v", byKey, ok)
	}
	if _, ok := st.ProductByKey("nope"); ok {
		t.Error("ProductByKey(nope) should miss")
	}
	inCat := st.ProductsInCategory("computing/hard-drives")
	if len(inCat) != 1 || inCat[0].ID != "p1" {
		t.Errorf("ProductsInCategory = %v", inCat)
	}
	if st.NumProducts() != 1 {
		t.Errorf("NumProducts = %d", st.NumProducts())
	}
}

func TestStoreProductIsolation(t *testing.T) {
	st := NewStore()
	if err := st.AddCategory(hardDriveCategory()); err != nil {
		t.Fatal(err)
	}
	spec := Spec{{Name: "Brand", Value: "Seagate"}}
	if err := st.AddProduct(Product{ID: "p1", CategoryID: "computing/hard-drives", Spec: spec}); err != nil {
		t.Fatal(err)
	}
	spec[0].Value = "MUTATED"
	got, _ := st.Product("p1")
	if v, _ := got.Spec.Get("Brand"); v != "Seagate" {
		t.Error("store spec aliased caller slice")
	}
	// Mutating the returned product must not affect the store either.
	got.Spec.Set("Brand", "ALSO MUTATED")
	again, _ := st.Product("p1")
	if v, _ := again.Spec.Get("Brand"); v != "Seagate" {
		t.Error("returned spec aliased store")
	}
}

func TestStoreConcurrent(t *testing.T) {
	st := NewStore()
	if err := st.AddCategory(hardDriveCategory()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := fmt.Sprintf("p-%d-%d", w, i)
				err := st.AddProduct(Product{
					ID:         id,
					CategoryID: "computing/hard-drives",
					Spec:       Spec{{Name: AttrMPN, Value: id}},
				})
				if err != nil {
					t.Error(err)
					return
				}
				st.ProductsInCategory("computing/hard-drives")
				st.ProductByKey(id)
			}
		}(w)
	}
	wg.Wait()
	if st.NumProducts() != 800 {
		t.Errorf("NumProducts = %d, want 800", st.NumProducts())
	}
}

// TestAddProductKeyFirstWins is the regression test for the byKey
// clobbering bug: inserting a second product with an already-used UPC/MPN
// key used to overwrite the key index, making the first product
// unreachable via ProductByKey. The first insertion must keep the key and
// the collision must be surfaced to the caller.
func TestAddProductKeyFirstWins(t *testing.T) {
	st := NewStore()
	if err := st.AddCategory(hardDriveCategory()); err != nil {
		t.Fatal(err)
	}
	catID := "computing/hard-drives"
	first := Product{ID: "p1", CategoryID: catID,
		Spec: Spec{{Name: "Brand", Value: "Seagate"}, {Name: AttrMPN, Value: "ST3500"}}}
	out, err := st.AddProductOutcome(first)
	if err != nil || out.KeyShadowedBy != "" {
		t.Fatalf("first insert: outcome %+v, err %v", out, err)
	}
	second := Product{ID: "p2", CategoryID: catID,
		Spec: Spec{{Name: "Brand", Value: "Hitachi"}, {Name: AttrMPN, Value: "ST3500"}}}
	out, err = st.AddProductOutcome(second)
	if err != nil {
		t.Fatalf("duplicate-key insert must succeed, got %v", err)
	}
	if out.KeyShadowedBy != "p1" {
		t.Errorf("KeyShadowedBy = %q, want p1", out.KeyShadowedBy)
	}
	got, ok := st.ProductByKey("ST3500")
	if !ok || got.ID != "p1" {
		t.Errorf("ProductByKey = %+v, %v; first insertion must keep the key", got, ok)
	}
	// Both products are stored; the version counter saw both inserts.
	if _, ok := st.Product("p2"); !ok {
		t.Error("shadowed product p2 not stored")
	}
	if v := st.CategoryVersion(catID); v != 2 {
		t.Errorf("CategoryVersion = %d, want 2", v)
	}
	// A UPC product does not shadow an MPN product: different keys.
	third := Product{ID: "p3", CategoryID: catID,
		Spec: Spec{{Name: AttrUPC, Value: "505174"}}}
	if out, err := st.AddProductOutcome(third); err != nil || out.KeyShadowedBy != "" {
		t.Errorf("distinct-key insert: outcome %+v, err %v", out, err)
	}
}

// TestAddProductAutoID pins the locked ID reservation: generated IDs are
// unique under concurrency, skip IDs already in use, and failed inserts
// reserve nothing visible.
func TestAddProductAutoID(t *testing.T) {
	st := NewStore()
	if err := st.AddCategory(hardDriveCategory()); err != nil {
		t.Fatal(err)
	}
	catID := "computing/hard-drives"
	// Pre-claim the first candidate ID by hand; the generator must skip it.
	if err := st.AddProduct(Product{ID: "synth-nokey-0", CategoryID: catID,
		Spec: Spec{{Name: "Brand", Value: "Seagate"}}}); err != nil {
		t.Fatal(err)
	}
	id, out, err := st.AddProductAutoID("synth", Product{CategoryID: catID,
		Spec: Spec{{Name: "Brand", Value: "Hitachi"}}})
	if err != nil || out.KeyShadowedBy != "" {
		t.Fatalf("AddProductAutoID: %v, %+v", err, out)
	}
	if id == "synth-nokey-0" {
		t.Fatalf("generated ID %q collides with existing product", id)
	}
	if _, ok := st.Product(id); !ok {
		t.Fatalf("product %q not stored", id)
	}
	// Rejections surface unchanged.
	if _, _, err := st.AddProductAutoID("synth", Product{CategoryID: "nope"}); !errors.Is(err, ErrUnknownCategory) {
		t.Errorf("unknown category err = %v", err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, _, err := st.AddProductAutoID("synth", Product{CategoryID: catID,
					Spec: Spec{{Name: "Brand", Value: "WD"}}})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got, want := st.NumProducts(), 2+8*50; got != want {
		t.Errorf("NumProducts = %d, want %d (concurrent auto-IDs collided?)", got, want)
	}
}

func TestAttributeKindString(t *testing.T) {
	if KindNumeric.String() != "numeric" || KindCategorical.String() != "categorical" ||
		KindText.String() != "text" || KindIdentifier.String() != "identifier" {
		t.Error("kind strings wrong")
	}
	if AttributeKind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestCategoryVersion(t *testing.T) {
	st := NewStore()
	if err := st.AddCategory(hardDriveCategory()); err != nil {
		t.Fatal(err)
	}
	catID := hardDriveCategory().ID
	if got := st.CategoryVersion(catID); got != 0 {
		t.Errorf("fresh category version = %d, want 0", got)
	}
	if got := st.CategoryVersion("unknown"); got != 0 {
		t.Errorf("unknown category version = %d, want 0", got)
	}

	for i := 1; i <= 3; i++ {
		err := st.AddProduct(Product{
			ID: fmt.Sprintf("p%d", i), CategoryID: catID,
			Spec: Spec{{Name: "Brand", Value: "Seagate"}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := st.CategoryVersion(catID); got != uint64(i) {
			t.Errorf("version after %d inserts = %d", i, got)
		}
	}

	// Failed inserts must not bump the version.
	before := st.CategoryVersion(catID)
	if err := st.AddProduct(Product{ID: "p1", CategoryID: catID}); err == nil {
		t.Fatal("duplicate insert should fail")
	}
	if err := st.AddProduct(Product{ID: "px", CategoryID: catID, Spec: Spec{{Name: "Bogus", Value: "v"}}}); err == nil {
		t.Fatal("schema-violating insert should fail")
	}
	if got := st.CategoryVersion(catID); got != before {
		t.Errorf("version moved on failed inserts: %d -> %d", before, got)
	}
}

func TestProductsSince(t *testing.T) {
	st := NewStore()
	if err := st.AddCategory(hardDriveCategory()); err != nil {
		t.Fatal(err)
	}
	catID := "computing/hard-drives"
	add := func(id string) {
		t.Helper()
		err := st.AddProduct(Product{ID: id, CategoryID: catID,
			Spec: Spec{{Name: "Brand", Value: "Seagate"}}})
		if err != nil {
			t.Fatal(err)
		}
	}
	add("p1")
	add("p2")
	add("p3")

	all, v, ok := st.ProductsSince(catID, 0)
	if !ok || v != 3 || len(all) != 3 || all[0].ID != "p1" || all[2].ID != "p3" {
		t.Fatalf("ProductsSince(0) = %v, %d, %v", all, v, ok)
	}
	mid, v, ok := st.ProductsSince(catID, 1)
	if !ok || v != 3 || len(mid) != 2 || mid[0].ID != "p2" {
		t.Fatalf("ProductsSince(1) = %v, %d, %v", mid, v, ok)
	}
	empty, v, ok := st.ProductsSince(catID, 3)
	if !ok || v != 3 || len(empty) != 0 {
		t.Fatalf("ProductsSince(current) = %v, %d, %v", empty, v, ok)
	}
	if _, v, ok := st.ProductsSince(catID, 4); ok || v != 3 {
		t.Errorf("ProductsSince(ahead) = ok with version %d", v)
	}
	if got, v, ok := st.ProductsSince("unknown", 0); !ok || v != 0 || len(got) != 0 {
		t.Errorf("ProductsSince(unknown category) = %v, %d, %v", got, v, ok)
	}

	// The delta clones specs: mutating a returned product must not reach
	// the store.
	mid[0].Spec.Set("Brand", "MUTATED")
	if got, _ := st.Product("p2"); func() string { v, _ := got.Spec.Get("Brand"); return v }() != "Seagate" {
		t.Error("ProductsSince leaked store spec")
	}

	ps, pv := st.ProductsInCategoryVersioned(catID)
	if pv != 3 || len(ps) != 3 {
		t.Errorf("ProductsInCategoryVersioned = %d products at v%d", len(ps), pv)
	}
}

// TestSchemaNameIndex verifies the stored schema's map-backed lookups and
// the literal schema's linear fallback agree, including first-wins on
// duplicate names.
func TestSchemaNameIndex(t *testing.T) {
	st := NewStore()
	if err := st.AddCategory(hardDriveCategory()); err != nil {
		t.Fatal(err)
	}
	stored, _ := st.Category("computing/hard-drives")
	if stored.Schema.byName == nil {
		t.Fatal("stored schema has no name index")
	}
	literal := hardDriveCategory().Schema
	for _, name := range append(literal.Names(), "Missing", "") {
		if stored.Schema.Has(name) != literal.Has(name) {
			t.Errorf("Has(%q) disagrees between stored and literal schema", name)
		}
		sa, sok := stored.Schema.Attribute(name)
		la, lok := literal.Attribute(name)
		if sok != lok || sa != la {
			t.Errorf("Attribute(%q): stored %+v,%v vs literal %+v,%v", name, sa, sok, la, lok)
		}
	}

	dup := Schema{Attributes: []Attribute{
		{Name: "X", Kind: KindCategorical},
		{Name: "X", Kind: KindNumeric, Unit: "GB"},
	}}
	indexed := dup
	indexed.buildNameIndex()
	da, _ := dup.Attribute("X")
	ia, _ := indexed.Attribute("X")
	if da != ia || ia.Kind != KindCategorical {
		t.Errorf("duplicate name: indexed %+v vs linear %+v (first should win)", ia, da)
	}
}
