// Package categorize implements the title-based category classifier the
// paper mentions in §2: "To determine the category for a given offer, we use
// a simple classifier, which given the title of the offer, returns its
// category C under the catalog taxonomy."
//
// The classifier is multinomial Naive Bayes over title tokens, trained from
// catalog products (attribute values are representative of the vocabulary
// merchants use in titles) and optionally from offers with known categories.
package categorize

import (
	"prodsynth/internal/catalog"
	"prodsynth/internal/ml"
	"prodsynth/internal/offer"
	"prodsynth/internal/text"
)

// Classifier assigns catalog categories to offer titles.
type Classifier struct {
	nb *ml.NaiveBayes
}

// New returns an untrained classifier.
func New() *Classifier {
	return &Classifier{nb: ml.NewNaiveBayes(1)}
}

// Snapshot extracts the classifier's trained state in deterministic order,
// for serialization.
func (c *Classifier) Snapshot() ml.NBSnapshot { return c.nb.Snapshot() }

// FromSnapshot rebuilds a classifier from a snapshot taken with Snapshot.
// The result classifies identically to the original.
func FromSnapshot(s ml.NBSnapshot) *Classifier {
	return &Classifier{nb: ml.NaiveBayesFromSnapshot(s)}
}

// TrainFromCatalog adds every product's attribute values as a training
// document for its category.
func (c *Classifier) TrainFromCatalog(store *catalog.Store) {
	for _, cat := range store.Categories() {
		for _, p := range store.ProductsInCategory(cat.ID) {
			var toks []string
			for _, av := range p.Spec {
				toks = append(toks, text.DefaultTokenizer.Tokenize(av.Value)...)
			}
			if len(toks) > 0 {
				c.nb.Train(cat.ID, toks)
			}
		}
	}
}

// TrainFromOffers adds offers that already carry a category (e.g. the
// historical feed) as training documents.
func (c *Classifier) TrainFromOffers(offers []offer.Offer) {
	for _, o := range offers {
		if o.CategoryID == "" {
			continue
		}
		toks := text.DefaultTokenizer.Tokenize(o.Title)
		if len(toks) > 0 {
			c.nb.Train(o.CategoryID, toks)
		}
	}
}

// Classify returns the predicted category for a title and the posterior
// confidence. An empty string means the classifier has no training data.
func (c *Classifier) Classify(title string) (string, float64) {
	return c.nb.Classify(text.DefaultTokenizer.Tokenize(title))
}

// Assign fills in CategoryID for every offer that lacks one, returning the
// number of offers (re)assigned. Offers that already have a category are
// left untouched — the pipeline trusts feed categories when present.
func (c *Classifier) Assign(offers []offer.Offer) int {
	n := 0
	for i := range offers {
		if offers[i].CategoryID != "" {
			continue
		}
		if cat, _ := c.Classify(offers[i].Title); cat != "" {
			offers[i].CategoryID = cat
			n++
		}
	}
	return n
}
