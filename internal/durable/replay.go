package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"prodsynth/internal/catalog"
)

// replayResult is what replaying the log tail over a snapshot produced.
type replayResult struct {
	records   int
	truncated int64
	segments  int
}

// replaySegments applies the listed segments, in sequence order, to the
// store. A record that cannot be parsed is either a torn tail — the
// write a crash cut short — or corruption, and the two are deliberately
// distinguished: only the LAST segment may end torn (a crash tears at
// most the newest write), and only at its physical end. A torn tail is
// truncated off the file (so the next recovery does not re-trip on it)
// and replay stops there; everything else is an error, because silently
// skipping mid-log records would replay a catalog different from the one
// that was acknowledged.
func replaySegments(store *catalog.Store, dir string, seqs []uint64) (replayResult, error) {
	var res replayResult
	for i, seq := range seqs {
		last := i == len(seqs)-1
		n, trunc, err := replaySegment(store, filepath.Join(dir, segName(seq)), last)
		if err != nil {
			return res, fmt.Errorf("durable: segment %s: %w", segName(seq), err)
		}
		res.records += n
		res.truncated += trunc
		res.segments++
	}
	return res, nil
}

func replaySegment(store *catalog.Store, path string, last bool) (records int, truncated int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	n, off, framing, perr := applyRecords(store, data)
	if perr == nil {
		return n, 0, nil
	}
	if !last {
		return n, 0, fmt.Errorf("at byte %d (not the last segment, so not a torn tail): %w", off, perr)
	}
	// A record whose checksum verified but whose fields failed to decode
	// or replay cannot be a torn write — a crash tears framing, it does
	// not forge a valid CRC over bad fields.
	if !framing || !tornTail(data, off) {
		return n, 0, fmt.Errorf("at byte %d (not a torn tail): %w", off, perr)
	}
	// Torn tail: cut it off so the segment is clean for any later read.
	if err := os.Truncate(path, off); err != nil {
		return n, 0, err
	}
	return n, int64(len(data)) - off, nil
}

// applyRecords replays framed records from data until the end or the
// first failure, returning how many applied, the byte offset of the
// failed record, and whether the failure was in the framing layer
// (header/length/checksum — the kind a torn write produces) as opposed
// to a decode or replay failure of a checksum-verified payload.
func applyRecords(store *catalog.Store, data []byte) (records int, off int64, framing bool, err error) {
	pos := 0
	for pos < len(data) {
		rest := data[pos:]
		if len(rest) < recordHeaderSize {
			return records, int64(pos), true, fmt.Errorf("%w: truncated record header: %d of %d bytes", ErrBadRecord, len(rest), recordHeaderSize)
		}
		length := binary.LittleEndian.Uint32(rest[0:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if length > maxRecordLen {
			return records, int64(pos), true, fmt.Errorf("%w: record length %d exceeds maximum %d", ErrBadRecord, length, maxRecordLen)
		}
		if uint64(len(rest)-recordHeaderSize) < uint64(length) {
			return records, int64(pos), true, fmt.Errorf("%w: truncated payload: %d of %d bytes", ErrBadRecord, len(rest)-recordHeaderSize, length)
		}
		payload := rest[recordHeaderSize : recordHeaderSize+int(length)]
		if got := crc32.ChecksumIEEE(payload); got != sum {
			return records, int64(pos), true, fmt.Errorf("%w: checksum mismatch: got %08x, want %08x", ErrBadRecord, got, sum)
		}
		rec, derr := decodeRecord(payload)
		if derr != nil {
			return records, int64(pos), false, derr
		}
		if rerr := store.Replay(rec); rerr != nil {
			return records, int64(pos), false, fmt.Errorf("replay: %w", rerr)
		}
		records++
		pos += recordHeaderSize + int(length)
	}
	return records, int64(pos), true, nil
}

// tornTail reports whether a parse failure at off looks like a torn
// final write rather than mid-log corruption: the failed record must
// reach (or claim to reach) the physical end of the file. A record whose
// bytes are all present mid-file but fail its checksum is corruption —
// valid records follow it, so a crash cannot explain it.
func tornTail(data []byte, off int64) bool {
	rest := data[off:]
	if len(rest) < recordHeaderSize {
		return true // header itself cut short
	}
	length := binary.LittleEndian.Uint32(rest[0:4])
	claimed := uint64(recordHeaderSize) + uint64(length)
	if uint64(len(rest)) < claimed {
		return true // payload cut short (or garbage length overrunning EOF)
	}
	// All claimed bytes are present: torn only if nothing follows — a
	// sector-granular tear can zero-fill the final record's tail.
	return uint64(len(rest)) == claimed
}
