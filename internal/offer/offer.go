// Package offer models merchant offers and offer feeds (paper §2, Figure 3).
//
// An offer o = (M, price, image, C, URL, title, {<A1,v1>,...,<An,vn>}) is
// what a merchant submits to the Product Search Engine: terse feed fields
// (title, price, URL) plus an optional offer specification — the attribute-
// value pairs either present in the feed or extracted later from the
// merchant's landing page.
package offer

import (
	"fmt"
	"sort"

	"prodsynth/internal/catalog"
)

// Offer is one merchant offer.
type Offer struct {
	// ID uniquely identifies the offer within a dataset.
	ID string
	// Merchant is the merchant identifier M.
	Merchant string
	// CategoryID is the catalog category assigned to the offer (either
	// present in the feed or produced by the category classifier).
	CategoryID string
	// Title is the short free-text sentence describing the product.
	Title string
	// PriceCents is the advertised price in cents (0 if unknown).
	PriceCents int64
	// URL is the landing page on the merchant site.
	URL string
	// ImageURL is the product image (may be empty).
	ImageURL string
	// Spec is the offer specification: attribute-value pairs in the
	// merchant's own vocabulary. Populated from the feed or by the
	// web-page attribute extraction component.
	Spec catalog.Spec
}

// Clone returns a deep copy of the offer.
func (o Offer) Clone() Offer {
	cp := o
	cp.Spec = o.Spec.Clone()
	return cp
}

// SchemaKey identifies a (merchant, category) pair — what the paper calls
// "the schema of merchant M for category C" (§2). Attribute correspondences
// are scoped to these keys.
type SchemaKey struct {
	Merchant   string
	CategoryID string
}

func (k SchemaKey) String() string {
	return fmt.Sprintf("%s@%s", k.Merchant, k.CategoryID)
}

// Set is an in-memory offer collection with the groupings the offline
// learning phase iterates over: by (merchant, category), by category, and
// by merchant. It is immutable after construction via NewSet.
type Set struct {
	offers     []Offer
	byMC       map[SchemaKey][]int
	byCategory map[string][]int
	byMerchant map[string][]int
}

// NewSet indexes the given offers. The slice is not copied; callers must not
// mutate it afterwards.
func NewSet(offers []Offer) *Set {
	s := &Set{
		offers:     offers,
		byMC:       make(map[SchemaKey][]int),
		byCategory: make(map[string][]int),
		byMerchant: make(map[string][]int),
	}
	for i, o := range offers {
		k := SchemaKey{Merchant: o.Merchant, CategoryID: o.CategoryID}
		s.byMC[k] = append(s.byMC[k], i)
		s.byCategory[o.CategoryID] = append(s.byCategory[o.CategoryID], i)
		s.byMerchant[o.Merchant] = append(s.byMerchant[o.Merchant], i)
	}
	return s
}

// Len returns the number of offers.
func (s *Set) Len() int { return len(s.offers) }

// All returns all offers in input order. The returned slice is shared; do
// not mutate.
func (s *Set) All() []Offer { return s.offers }

// At returns the offer at index i.
func (s *Set) At(i int) Offer { return s.offers[i] }

// ByMerchantCategory returns the offers of one (merchant, category) pair.
func (s *Set) ByMerchantCategory(k SchemaKey) []Offer {
	return s.gather(s.byMC[k])
}

// ByCategory returns the offers of one category across all merchants.
func (s *Set) ByCategory(categoryID string) []Offer {
	return s.gather(s.byCategory[categoryID])
}

// ByMerchant returns the offers of one merchant across all categories.
func (s *Set) ByMerchant(merchant string) []Offer {
	return s.gather(s.byMerchant[merchant])
}

// SchemaKeys returns every (merchant, category) pair present, sorted.
func (s *Set) SchemaKeys() []SchemaKey {
	out := make([]SchemaKey, 0, len(s.byMC))
	for k := range s.byMC {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Merchant != out[j].Merchant {
			return out[i].Merchant < out[j].Merchant
		}
		return out[i].CategoryID < out[j].CategoryID
	})
	return out
}

// Categories returns the distinct category IDs present, sorted.
func (s *Set) Categories() []string {
	out := make([]string, 0, len(s.byCategory))
	for c := range s.byCategory {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Merchants returns the distinct merchants present, sorted.
func (s *Set) Merchants() []string {
	out := make([]string, 0, len(s.byMerchant))
	for m := range s.byMerchant {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// MerchantAttributes returns the distinct offer-spec attribute names used by
// merchant M in category C — the merchant's "schema" in the paper's abused
// terminology (§2). Sorted for determinism.
func (s *Set) MerchantAttributes(k SchemaKey) []string {
	seen := make(map[string]bool)
	for _, i := range s.byMC[k] {
		for _, av := range s.offers[i].Spec {
			seen[av.Name] = true
		}
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func (s *Set) gather(idx []int) []Offer {
	out := make([]Offer, len(idx))
	for j, i := range idx {
		out[j] = s.offers[i]
	}
	return out
}
