// Package prodsynth is an end-to-end implementation of the product
// synthesis pipeline from "Synthesizing Products for Online Catalogs"
// (Nguyen, Fuxman, Paparizos, Freire, Agrawal — PVLDB 4(7), 2011).
//
// Given a product catalog and merchant offers (terse feed rows plus landing
// pages), the system learns attribute correspondences between merchant
// vocabularies and the catalog schema from historical offer-to-product
// matches — with an automatically constructed training set, no manual
// labels — and then synthesizes new, structured product instances from
// offers that match nothing in the catalog:
//
//	store := prodsynth.NewCatalog()
//	// ... add categories and known products ...
//	sys := prodsynth.New(store, prodsynth.Config{})
//	if err := sys.Learn(historicalOffers, pages); err != nil { ... }
//	result, err := sys.Synthesize(incomingOffers, pages)
//	// result.Products now holds catalog-ready product instances.
//
// The subpackages under internal implement each component of the paper's
// Figure 4 architecture plus every substrate the evaluation needs: an HTML
// extractor, distributional similarity measures, logistic regression,
// baseline matchers (DUMAS, LSD, COMA++-style), and a synthetic marketplace
// generator standing in for the proprietary Bing Shopping corpus.
package prodsynth

import (
	"context"
	"errors"
	"strconv"
	"time"

	"prodsynth/internal/catalog"
	"prodsynth/internal/core"
	"prodsynth/internal/correspond"
	"prodsynth/internal/fusion"
	"prodsynth/internal/match"
	"prodsynth/internal/offer"
	"prodsynth/internal/stream"
	"prodsynth/internal/synth"
)

// ErrNotLearned is returned by Synthesize and SynthesizeBatches when Learn
// has not succeeded first: the runtime pipeline needs the learned attribute
// correspondences.
var ErrNotLearned = errors.New("prodsynth: Learn must succeed before Synthesize")

// Re-exported data model. These aliases are the supported public surface;
// their methods are documented on the internal definitions.
type (
	// Catalog is the product catalog store: categories, schemas,
	// products, key indexes. Safe for concurrent use.
	Catalog = catalog.Store
	// Category is a taxonomy node with a schema.
	Category = catalog.Category
	// Schema is a category's attribute list.
	Schema = catalog.Schema
	// Attribute is one schema attribute.
	Attribute = catalog.Attribute
	// AttributeValue is one <name, value> pair.
	AttributeValue = catalog.AttributeValue
	// Spec is an attribute-value specification.
	Spec = catalog.Spec
	// Product is a catalog product instance.
	Product = catalog.Product
	// Offer is a merchant offer.
	Offer = offer.Offer
	// SchemaKey identifies a (merchant, category) pair.
	SchemaKey = offer.SchemaKey
	// Config controls the pipeline (extraction, matching, training,
	// thresholds, fusion strategy, parallelism).
	Config = core.Config
	// PageFetcher retrieves landing pages by URL.
	PageFetcher = core.PageFetcher
	// MapFetcher serves pages from an in-memory map.
	MapFetcher = core.MapFetcher
	// Correspondence is a scored attribute correspondence
	// <catalog attr, merchant attr, merchant, category>.
	Correspondence = correspond.Scored
	// Synthesized is a product instance produced by the pipeline.
	Synthesized = fusion.Synthesized
	// OfflineStats summarizes the offline learning phase (§5.1 numbers).
	OfflineStats = core.OfflineStats
	// Marketplace is a generated synthetic marketplace with ground truth.
	Marketplace = synth.Dataset
	// MarketplaceConfig sizes a generated marketplace.
	MarketplaceConfig = synth.Config
)

// Attribute kinds, re-exported for schema construction.
const (
	KindCategorical = catalog.KindCategorical
	KindNumeric     = catalog.KindNumeric
	KindText        = catalog.KindText
	KindIdentifier  = catalog.KindIdentifier
)

// Key attribute names used for clustering (§4).
const (
	AttrUPC = catalog.AttrUPC
	AttrMPN = catalog.AttrMPN
)

// NewCatalog returns an empty catalog store.
func NewCatalog() *Catalog { return catalog.NewStore() }

// MatchRegistry is the shared cache of per-category matching state (title
// indexes and token caches). Set one on Config.Matcher.Registry to give a
// pipeline an independent lifecycle or memory bound; leave it nil to
// share DefaultRegistry with the rest of the process.
type MatchRegistry = match.Registry

// MatchRegistryOptions tunes a MatchRegistry: lock sharding (Shards) and
// the LRU bound on cached category entries (MaxEntries). Zero values
// apply defaults (8 shards, unbounded).
type MatchRegistryOptions = match.RegistryOptions

// NewMatchRegistry returns an empty match registry with the given
// sharding and memory bounds. Matcher output is identical for every
// option combination; the options trade lock contention and resident
// index memory against rebuild cost on cold categories.
func NewMatchRegistry(opts MatchRegistryOptions) *MatchRegistry {
	return match.NewRegistryWithOptions(opts)
}

// ReleaseMatchState drops the matcher's cached per-category indexes for a
// catalog, releasing the memory (and the catalog reference) the shared
// index registry holds for it. Call when a catalog goes out of use in a
// long-lived process — e.g. after swapping in a rebuilt catalog — to keep
// the registry from pinning retired stores. Matching against the catalog
// afterwards simply rebuilds its indexes on first touch.
func ReleaseMatchState(store *Catalog) { match.DefaultRegistry.ReleaseStore(store) }

// GenerateMarketplace builds a synthetic marketplace (catalog, merchants,
// offers, landing pages, ground truth) standing in for a production offer
// corpus. Deterministic given cfg.Seed.
func GenerateMarketplace(cfg MarketplaceConfig) *Marketplace { return synth.Generate(cfg) }

// DefaultMarketplaceConfig is the small test-scale marketplace.
func DefaultMarketplaceConfig() MarketplaceConfig { return synth.DefaultConfig() }

// ExperimentMarketplaceConfig is the laptop-scale marketplace used to
// regenerate the paper's tables and figures.
func ExperimentMarketplaceConfig() MarketplaceConfig { return synth.ExperimentConfig() }

// System ties the offline learning phase and the runtime synthesis
// pipeline together over one catalog.
type System struct {
	store   *Catalog
	cfg     Config
	offline *core.OfflineResult
}

// New creates a System over a catalog. The zero Config applies the paper's
// defaults (table extraction, UPC+title matching, all six features,
// class-weighted logistic regression, centroid fusion, threshold 0.5).
func New(store *Catalog, cfg Config) *System {
	return &System{store: store, cfg: cfg}
}

// Learn runs the offline learning phase (§3) over historical offers:
// extraction, historical matching, feature computation, automatic training
// set construction, classifier training, and correspondence selection.
func (s *System) Learn(historical []Offer, pages PageFetcher) error {
	off, err := core.RunOffline(s.store, historical, pages, s.cfg)
	if err != nil {
		return err
	}
	s.offline = off
	return nil
}

// Stats returns the offline learning statistics. Zero before Learn.
func (s *System) Stats() OfflineStats {
	if s.offline == nil {
		return OfflineStats{}
	}
	return s.offline.Stats
}

// Correspondences returns every selected attribute correspondence.
// Nil before Learn.
func (s *System) Correspondences() []Correspondence {
	if s.offline == nil {
		return nil
	}
	return s.offline.Correspondences.All()
}

// ScoredCandidates returns every candidate correspondence with its
// classifier score, best first. Nil before Learn.
func (s *System) ScoredCandidates() []Correspondence {
	if s.offline == nil {
		return nil
	}
	return s.offline.Scored
}

// Result is the outcome of a Synthesize run.
type Result struct {
	// Products are the synthesized product instances.
	Products []Synthesized
	// PairsDropped counts extracted attribute-value pairs discarded for
	// lack of a correspondence (the noise filter of §4).
	PairsDropped int
	// PairsMapped counts pairs translated into catalog vocabulary.
	PairsMapped int
	// OffersWithoutKey counts reconciled offers that could not be
	// clustered because no key attribute survived reconciliation.
	OffersWithoutKey int
	// ExcludedMatched counts incoming offers dropped because they match
	// an existing catalog product — the run's match count against the
	// warm indexes.
	ExcludedMatched int
	// Offers is the number of incoming offers the run processed.
	Offers int
	// Clusters is the number of offer clusters value fusion synthesized
	// from (one synthesized product per cluster).
	Clusters int
	// Elapsed is the wall-clock duration of the run. In a BatchResult it
	// makes the per-batch cost of a wave visible next to its match and
	// fusion counts.
	Elapsed time.Duration
	// Err is set on a per-batch Result inside BatchResult (or a
	// StreamResult) when that batch failed; the other fields are zero
	// except Offers. A failed batch does not stop later batches. Always
	// nil on a Result returned directly by Synthesize, which reports
	// failure through its error return instead.
	Err error
}

// Synthesize runs the runtime pipeline (§4) over incoming offers:
// extraction, schema reconciliation, clustering, and value fusion.
// Learn must have succeeded first; ErrNotLearned otherwise.
func (s *System) Synthesize(incoming []Offer, pages PageFetcher) (*Result, error) {
	if s.offline == nil {
		return nil, ErrNotLearned
	}
	start := time.Now()
	run, err := core.RunRuntime(s.store, s.offline, incoming, pages, s.cfg)
	if err != nil {
		return nil, err
	}
	return &Result{
		Products:         run.Products,
		PairsDropped:     run.Reconcile.PairsDropped,
		PairsMapped:      run.Reconcile.PairsMapped,
		OffersWithoutKey: len(run.SkippedNoKey),
		ExcludedMatched:  run.ExcludedMatched,
		Offers:           len(incoming),
		Clusters:         run.Clusters.Clusters,
		Elapsed:          time.Since(start),
	}, nil
}

// BatchResult is the outcome of a SynthesizeBatches run.
type BatchResult struct {
	// Batches holds one Result per input batch, in input order; each
	// carries its own wall time and match/fusion counts. A batch that
	// failed has Err set and contributes nothing but its offer count.
	Batches []*Result
	// Failed counts batches whose Result carries a non-nil Err.
	Failed int
	// Total aggregates every successful batch: concatenated Products
	// (batch order) and summed counters. Total.Elapsed sums the
	// per-batch run times (batches run sequentially, so it is also the
	// run's wall time minus failed batches).
	Total Result
}

// SynthesizeBatches runs the runtime pipeline over a sequence of offer
// batches — the serving shape of the system, where offer feeds arrive in
// waves. The learned offline state and the matcher's per-category indexes
// are reused across batches, so every batch after the first runs against
// warm state; a batch containing all offers at once is equivalent to a
// single Synthesize call. Offers are clustered within their batch: a
// product whose offers are split across batches synthesizes once per
// batch it appears in — use SynthesizeStream for cross-batch cluster
// memory.
//
// Learn must have succeeded first; ErrNotLearned otherwise. A batch that
// fails (e.g. under Config.StrictPages) records its error in that batch's
// Result.Err and the run continues: later batches still execute, and the
// returned error stays nil.
func (s *System) SynthesizeBatches(batches [][]Offer, pages PageFetcher) (*BatchResult, error) {
	if s.offline == nil {
		return nil, ErrNotLearned
	}
	out := &BatchResult{Batches: make([]*Result, 0, len(batches))}
	for _, batch := range batches {
		res, err := s.Synthesize(batch, pages)
		if err != nil {
			out.Batches = append(out.Batches, &Result{Offers: len(batch), Err: err})
			out.Failed++
			continue
		}
		out.Batches = append(out.Batches, res)
		out.Total.Products = append(out.Total.Products, res.Products...)
		out.Total.PairsDropped += res.PairsDropped
		out.Total.PairsMapped += res.PairsMapped
		out.Total.OffersWithoutKey += res.OffersWithoutKey
		out.Total.ExcludedMatched += res.ExcludedMatched
		out.Total.Offers += res.Offers
		out.Total.Clusters += res.Clusters
		out.Total.Elapsed += res.Elapsed
	}
	return out, nil
}

// StreamOptions tunes SynthesizeStream. The zero value keeps unbounded
// cluster memory and an unbuffered result channel.
type StreamOptions struct {
	// MaxOpenClusters bounds the cross-batch cluster memory: past the
	// bound, the least recently extended clusters are forgotten (a later
	// offer with a forgotten cluster's key synthesizes a duplicate, as a
	// memory-less batch run would). 0 means unbounded.
	MaxOpenClusters int
	// MaxIdleWaves forgets clusters no wave has extended for more than
	// this many consecutive waves — a TTL measured in waves, so behaviour
	// is deterministic for a given wave sequence. 0 means never.
	MaxIdleWaves int
	// DisableClusterMemory makes every wave cluster independently,
	// reproducing SynthesizeBatches semantics wave for wave.
	DisableClusterMemory bool
	// Buffer is the result channel's capacity. 0 (unbuffered) applies
	// backpressure: the pipeline runs at most one wave ahead of the
	// consumer (the wave whose result is being delivered). Larger values
	// let it run further ahead.
	Buffer int
}

// StreamResult is one emission of SynthesizeStream: the embedded Result
// carries the wave's products and counters (or Err for a failed wave).
type StreamResult struct {
	Result
	// Wave is the 0-based wave index; on the final result, the number of
	// waves consumed.
	Wave int
	// OpenClusters is the cluster-memory size after the wave — the
	// quantity StreamOptions.MaxOpenClusters bounds. Zero when cluster
	// memory is disabled.
	OpenClusters int
	// Final marks the single closing result: its Products are the merged
	// stream view (final fused state of every remembered cluster, in
	// first-appearance order) and its counters aggregate all successful
	// waves. For an uninterrupted stream with unbounded memory and no
	// mid-stream catalog growth, the final Products are byte-identical
	// to a one-shot Synthesize over the concatenated waves.
	Final bool
}

// SynthesizeStream runs the runtime pipeline as a long-lived feed
// consumer: offer waves are read from waves, processed in order against
// the warm matcher state, and one StreamResult per wave is delivered on
// the returned channel, followed by a closing Final result when waves is
// closed. Unlike SynthesizeBatches, clusters stay open across waves in a
// cross-batch cluster memory: an offer arriving in wave n whose key
// matches a cluster synthesized in an earlier wave joins that cluster,
// and the wave's result carries the product re-fused over the union of
// evidence — the product synthesizes once, not once per wave. The memory
// is bounded through StreamOptions and invalidated per category when
// AddToCatalog grows the catalog mid-stream (the same version counters
// that refresh the matcher's indexes), since such clusters' products may
// now be matched — and excluded — against the catalog itself.
//
// A failed wave (e.g. under Config.StrictPages) reports its error in
// that wave's StreamResult.Err and the stream continues. Cancelling ctx
// stops the pipeline — between waves or between the stages of the wave
// in flight — and closes the channel without the final result; the
// pipeline goroutine always exits once ctx is cancelled or waves is
// closed, even if the consumer stops reading. Learn must have succeeded
// first; ErrNotLearned otherwise.
func (s *System) SynthesizeStream(ctx context.Context, waves <-chan []Offer, pages PageFetcher, opts StreamOptions) (<-chan StreamResult, error) {
	if s.offline == nil {
		return nil, ErrNotLearned
	}
	// The inner channel stays unbuffered regardless of opts.Buffer: the
	// forwarding goroutine already holds one result in flight, so any
	// inner capacity would let the pipeline run that much further ahead
	// than StreamOptions.Buffer promises.
	inner := stream.Run(ctx, s.store, s.offline, waves, pages, s.cfg, stream.Options{
		MaxOpenClusters: opts.MaxOpenClusters,
		MaxIdleWaves:    opts.MaxIdleWaves,
		DisableMemory:   opts.DisableClusterMemory,
	})
	out := make(chan StreamResult, opts.Buffer)
	go func() {
		defer close(out)
		for r := range inner {
			sr := StreamResult{
				Wave:         r.Wave,
				Final:        r.Final,
				OpenClusters: r.OpenClusters,
				Result: Result{
					Products:         r.Products,
					PairsDropped:     r.Reconcile.PairsDropped,
					PairsMapped:      r.Reconcile.PairsMapped,
					OffersWithoutKey: r.OffersWithoutKey,
					ExcludedMatched:  r.ExcludedMatched,
					Offers:           r.Offers,
					Clusters:         r.Clusters,
					Elapsed:          r.Elapsed,
					Err:              r.Err,
				},
			}
			select {
			case out <- sr:
			case <-ctx.Done():
				// The consumer may be gone; drain inner (stream.Run
				// also watches ctx, so it closes promptly) and exit.
				for range inner {
				}
				return
			}
		}
	}()
	return out, nil
}

// AddReport is the outcome of an AddToCatalog run, with rejected products
// separated by cause.
type AddReport struct {
	// Added counts products inserted into the catalog.
	Added int
	// KeyCollisions are products whose synthesized ID (prefix + cluster
	// key) collided with an existing product ID — typically the product
	// was already added by an earlier wave, or two synthesized products
	// share a key. Nothing is wrong with the product itself.
	KeyCollisions []Synthesized
	// SchemaViolations are products rejected on their own merits: a spec
	// attribute outside the category schema, or an unknown category.
	SchemaViolations []Synthesized
}

// Skipped returns every rejected product (collisions then violations),
// mirroring the pre-AddReport return value.
func (r AddReport) Skipped() []Synthesized {
	return append(append([]Synthesized(nil), r.KeyCollisions...), r.SchemaViolations...)
}

// AddToCatalog inserts synthesized products into the catalog as new
// product instances, assigning IDs with the given prefix. Rejected
// products are reported by cause: ID collisions with existing products
// distinctly from schema violations. Insertions bump the affected
// categories' versions, which evicts the matcher's warm indexes for those
// categories (see Catalog.CategoryVersion) — a following Synthesize
// observes the grown catalog.
func (s *System) AddToCatalog(products []Synthesized, idPrefix string) AddReport {
	var report AddReport
	for i, p := range products {
		id := idPrefix + "-" + p.Key
		if p.Key == "" {
			id = idPrefix + "-" + strconv.Itoa(i)
		}
		prod := Product{ID: id, CategoryID: p.CategoryID, Spec: p.Spec}
		switch err := s.store.AddProduct(prod); {
		case err == nil:
			report.Added++
		case errors.Is(err, catalog.ErrDuplicateProduct):
			report.KeyCollisions = append(report.KeyCollisions, p)
		default:
			report.SchemaViolations = append(report.SchemaViolations, p)
		}
	}
	return report
}
