package categorize

import (
	"testing"

	"prodsynth/internal/catalog"
	"prodsynth/internal/offer"
)

func trainedClassifier(t *testing.T) *Classifier {
	t.Helper()
	st := catalog.NewStore()
	mk := func(id string, attrs ...string) catalog.Category {
		var as []catalog.Attribute
		for _, a := range attrs {
			as = append(as, catalog.Attribute{Name: a})
		}
		return catalog.Category{ID: id, Schema: catalog.Schema{Attributes: as}}
	}
	if err := st.AddCategory(mk("hd", "Brand", "Model", "Interface")); err != nil {
		t.Fatal(err)
	}
	if err := st.AddCategory(mk("cam", "Brand", "Model", "Lens")); err != nil {
		t.Fatal(err)
	}
	add := func(id, cat string, spec catalog.Spec) {
		t.Helper()
		if err := st.AddProduct(catalog.Product{ID: id, CategoryID: cat, Spec: spec}); err != nil {
			t.Fatal(err)
		}
	}
	add("p1", "hd", catalog.Spec{{Name: "Brand", Value: "Seagate"}, {Name: "Model", Value: "Barracuda hard drive"}, {Name: "Interface", Value: "SATA"}})
	add("p2", "hd", catalog.Spec{{Name: "Brand", Value: "Hitachi"}, {Name: "Model", Value: "Deskstar hard drive"}, {Name: "Interface", Value: "IDE"}})
	add("p3", "cam", catalog.Spec{{Name: "Brand", Value: "Canon"}, {Name: "Model", Value: "EOS digital camera"}, {Name: "Lens", Value: "zoom lens"}})
	add("p4", "cam", catalog.Spec{{Name: "Brand", Value: "Nikon"}, {Name: "Model", Value: "Coolpix digital camera"}, {Name: "Lens", Value: "wide lens"}})

	c := New()
	c.TrainFromCatalog(st)
	return c
}

func TestClassifyFromCatalog(t *testing.T) {
	c := trainedClassifier(t)
	if cat, _ := c.Classify("Seagate Barracuda SATA hard drive"); cat != "hd" {
		t.Errorf("classified as %q", cat)
	}
	if cat, _ := c.Classify("Canon EOS digital camera with zoom lens"); cat != "cam" {
		t.Errorf("classified as %q", cat)
	}
}

func TestTrainFromOffers(t *testing.T) {
	c := New()
	c.TrainFromOffers([]offer.Offer{
		{CategoryID: "kitchen", Title: "stainless steel dishwasher energy star"},
		{CategoryID: "kitchen", Title: "steel blender 500 watt"},
		{CategoryID: "furnishing", Title: "queen bedspread cotton"},
		{CategoryID: "", Title: "ignored, no category"},
	})
	if cat, _ := c.Classify("steel dishwasher"); cat != "kitchen" {
		t.Errorf("classified as %q", cat)
	}
}

func TestAssign(t *testing.T) {
	c := trainedClassifier(t)
	offers := []offer.Offer{
		{ID: "o1", Title: "Hitachi Deskstar IDE hard drive"},
		{ID: "o2", Title: "Nikon Coolpix camera", CategoryID: "preset"},
		{ID: "o3", Title: "Canon digital camera zoom"},
	}
	n := c.Assign(offers)
	if n != 2 {
		t.Errorf("assigned %d, want 2", n)
	}
	if offers[0].CategoryID != "hd" {
		t.Errorf("o1 = %q", offers[0].CategoryID)
	}
	if offers[1].CategoryID != "preset" {
		t.Errorf("o2 overwritten: %q", offers[1].CategoryID)
	}
	if offers[2].CategoryID != "cam" {
		t.Errorf("o3 = %q", offers[2].CategoryID)
	}
}

func TestClassifyUntrained(t *testing.T) {
	c := New()
	if cat, p := c.Classify("anything"); cat != "" || p != 0 {
		t.Errorf("untrained = %q, %g", cat, p)
	}
}

// TestClassifierSnapshotRoundTrip: a classifier rebuilt from its snapshot
// assigns identical categories with identical confidences.
func TestClassifierSnapshotRoundTrip(t *testing.T) {
	c := trainedClassifier(t)
	rebuilt := FromSnapshot(c.Snapshot())
	for _, title := range []string{
		"Hitachi Deskstar IDE hard drive",
		"Canon digital camera zoom",
		"totally unrelated words",
	} {
		c1, p1 := c.Classify(title)
		c2, p2 := rebuilt.Classify(title)
		if c1 != c2 || p1 != p2 {
			t.Errorf("Classify(%q): original (%q, %v) vs rebuilt (%q, %v)", title, c1, p1, c2, p2)
		}
	}
}
