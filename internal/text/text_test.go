package text

import (
	"math"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"ATA 100 mb/s", []string{"ata", "100", "mb", "s"}},
		{"500GB", []string{"500", "gb"}},
		{"Serial ATA-300", []string{"serial", "ata", "300"}},
		{"", nil},
		{"   ", nil},
		{"Windows Vista", []string{"windows", "vista"}},
		{"3.5\" x 1/3H", []string{"3", "5", "x", "1", "3", "h"}},
		{"HDT725050VLA360", []string{"hdt", "725050", "vla", "360"}},
		{"7200 rpm", []string{"7200", "rpm"}},
	}
	for _, c := range cases {
		got := DefaultTokenizer.Tokenize(c.in)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokenizeKeepAlphaNumJoined(t *testing.T) {
	tok := Tokenizer{KeepAlphaNumJoined: true}
	got := tok.Tokenize("500GB SATA2")
	want := []string{"500gb", "sata2"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestTokenizeStopWords(t *testing.T) {
	tok := Tokenizer{StopWords: map[string]bool{"the": true, "a": true}}
	got := tok.Tokenize("The Quick a Fox")
	want := []string{"quick", "fox"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestTokenizeUnicode(t *testing.T) {
	got := DefaultTokenizer.Tokenize("Caché Größe")
	want := []string{"caché", "größe"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestNormalizeName(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"Mfr. Part #", "mfr part"},
		{"  mfr   part ", "mfr part"},
		{"MPN", "mpn"},
		{"Storage Hard Drive / Capacity", "storage hard drive capacity"},
		{"", ""},
		{"###", ""},
	}
	for _, c := range cases {
		if got := NormalizeName(c.in); got != c.want {
			t.Errorf("NormalizeName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNormalizeNameIdempotent(t *testing.T) {
	f := func(s string) bool {
		once := NormalizeName(s)
		return NormalizeName(once) == once
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBagCounts(t *testing.T) {
	b := NewBag()
	b.AddValue("ATA 100")
	b.AddValue("IDE 133")
	b.AddValue("IDE 133")
	b.AddValue("ATA 133")

	if got := b.Total(); got != 8 {
		t.Fatalf("Total = %d, want 8", got)
	}
	if got := b.Count("133"); got != 3 {
		t.Errorf("Count(133) = %d, want 3", got)
	}
	if got := b.Count("ata"); got != 2 {
		t.Errorf("Count(ata) = %d, want 2", got)
	}
	if got := b.Distinct(); got != 4 {
		t.Errorf("Distinct = %d, want 4", got)
	}
}

func TestBagMergeClone(t *testing.T) {
	a := NewBag()
	a.Add("x", "y")
	b := NewBag()
	b.Add("y", "z")

	c := a.Clone()
	c.Merge(b)
	if c.Total() != 4 || c.Count("y") != 2 {
		t.Errorf("merged bag wrong: total=%d count(y)=%d", c.Total(), c.Count("y"))
	}
	// Original must be unchanged.
	if a.Total() != 2 || a.Count("y") != 1 {
		t.Errorf("clone mutated original: total=%d", a.Total())
	}
	c.Merge(nil) // must not panic
}

func TestBagJaccard(t *testing.T) {
	a := NewBag()
	a.Add("ata", "100", "ide", "133")
	b := NewBag()
	b.Add("ata", "100", "ide", "133", "mb", "s")

	got := a.Jaccard(b)
	want := 4.0 / 6.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Jaccard = %g, want %g", got, want)
	}
	if a.Jaccard(a) != 1 {
		t.Errorf("self Jaccard = %g, want 1", a.Jaccard(a))
	}
	empty := NewBag()
	if empty.Jaccard(empty) != 0 {
		t.Errorf("empty Jaccard = %g, want 0", empty.Jaccard(empty))
	}
	if a.Jaccard(nil) != 0 {
		t.Errorf("nil Jaccard should be 0")
	}
}

func TestBagJaccardSymmetric(t *testing.T) {
	f := func(xs, ys []string) bool {
		a, b := NewBag(), NewBag()
		a.Add(xs...)
		b.Add(ys...)
		return math.Abs(a.Jaccard(b)-b.Jaccard(a)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBagJaccardBounds(t *testing.T) {
	f := func(xs, ys []string) bool {
		a, b := NewBag(), NewBag()
		a.Add(xs...)
		b.Add(ys...)
		j := a.Jaccard(b)
		return j >= 0 && j <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistribution(t *testing.T) {
	b := NewBag()
	b.Add("speed", "speed", "rpm", "interface")
	d := b.Distribution()
	if got := d.P("speed"); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("P(speed) = %g, want 0.5", got)
	}
	if got := d.P("missing"); got != 0 {
		t.Errorf("P(missing) = %g, want 0", got)
	}
	if got := d.Support(); got != 3 {
		t.Errorf("Support = %d, want 3", got)
	}
	if got := d.Mass(); math.Abs(got-1) > 1e-12 {
		t.Errorf("Mass = %g, want 1", got)
	}
}

func TestDistributionEmptyBag(t *testing.T) {
	d := NewBag().Distribution()
	if d.Support() != 0 || d.Mass() != 0 {
		t.Errorf("empty distribution has support=%d mass=%g", d.Support(), d.Mass())
	}
}

func TestDistributionSumsToOne(t *testing.T) {
	f := func(tokens []string) bool {
		if len(tokens) == 0 {
			return true
		}
		b := NewBag()
		b.Add(tokens...)
		return math.Abs(b.Distribution().Mass()-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBagTokensSorted(t *testing.T) {
	b := NewBag()
	b.Add("z", "a", "m")
	got := b.SortedTokens()
	if !sort.StringsAreSorted(got) {
		t.Errorf("SortedTokens not sorted: %v", got)
	}
	if len(got) != 3 {
		t.Errorf("len = %d, want 3", len(got))
	}
}

func BenchmarkTokenize(b *testing.B) {
	s := "Hitachi 500GB S/ATA2 7200rpm Cache: 16MB, SATA 300 Hard Drive"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DefaultTokenizer.Tokenize(s)
	}
}

func BenchmarkBagDistribution(b *testing.B) {
	bag := NewBag()
	for i := 0; i < 100; i++ {
		bag.AddValue("Serial ATA 300 7200 rpm 16 MB cache")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bag.Distribution()
	}
}
