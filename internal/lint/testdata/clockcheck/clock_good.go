package durable

import "time"

// fixtureClock mirrors the package's injectable Clock.
type fixtureClock interface {
	Now() time.Time
}

// recoverLogClocked routes every timing read through the injected clock:
// no findings.
func recoverLogClocked(clk fixtureClock) time.Duration {
	start := clk.Now()
	return clk.Now().Sub(start)
}

// fixtureWall is the one allowlisted real-clock site.
type fixtureWall struct{}

//lint:allow clockcheck fixtureWall is the fixture's one real-clock site, behind the injectable clock
func (fixtureWall) Now() time.Time { return time.Now() }
