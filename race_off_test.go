//go:build !race

package prodsynth

// raceEnabled reports whether the race detector is active. The streaming
// tests use it to scale concurrency and iteration counts down under the
// detector's ~10x slowdown while keeping full coverage in plain runs.
const raceEnabled = false
