package assign

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaxWeightSimple(t *testing.T) {
	w := [][]float64{
		{0.9, 0.1},
		{0.2, 0.8},
	}
	a, err := MaxWeight(w)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != 0 || a[1] != 1 {
		t.Errorf("assignment = %v", a)
	}
}

func TestMaxWeightAntiDiagonal(t *testing.T) {
	// Greedy row-by-row would pick (0,0)=0.6 then (1,1)=0.1 (total 0.7);
	// optimal is (0,1)+(1,0) = 0.5+0.5 = 1.0.
	w := [][]float64{
		{0.6, 0.5},
		{0.5, 0.1},
	}
	a, err := MaxWeight(w)
	if err != nil {
		t.Fatal(err)
	}
	if got := TotalWeight(w, a); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("total = %g (assignment %v), want 1.0", got, a)
	}
}

func TestMaxWeightRectangularWide(t *testing.T) {
	// 2 rows, 3 cols: both rows matched, one column unused.
	w := [][]float64{
		{0.1, 0.9, 0.2},
		{0.8, 0.95, 0.1},
	}
	a, err := MaxWeight(w)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != 1 || a[1] != 0 {
		t.Errorf("assignment = %v (total %g)", a, TotalWeight(w, a))
	}
}

func TestMaxWeightRectangularTall(t *testing.T) {
	// 3 rows, 1 col: exactly one row is matched, the rest -1.
	w := [][]float64{{0.3}, {0.9}, {0.5}}
	a, err := MaxWeight(w)
	if err != nil {
		t.Fatal(err)
	}
	matched := 0
	for i, j := range a {
		if j == 0 {
			matched++
			if i != 1 {
				t.Errorf("wrong row matched: %v", a)
			}
		} else if j != -1 {
			t.Errorf("invalid column %d", j)
		}
	}
	if matched != 1 {
		t.Errorf("matched %d rows, want 1: %v", matched, a)
	}
}

func TestMaxWeightEmptyAndErrors(t *testing.T) {
	if a, err := MaxWeight(nil); err != nil || a != nil {
		t.Errorf("nil matrix: %v, %v", a, err)
	}
	if _, err := MaxWeight([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("ragged matrix should error")
	}
	if _, err := MaxWeight([][]float64{{math.NaN()}}); err == nil {
		t.Error("NaN should error")
	}
	if _, err := MaxWeight([][]float64{{math.Inf(1)}}); err == nil {
		t.Error("Inf should error")
	}
}

func TestMaxWeightIsOneToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(6), 1+rng.Intn(6)
		w := make([][]float64, m)
		for i := range w {
			w[i] = make([]float64, n)
			for j := range w[i] {
				w[i][j] = rng.Float64()
			}
		}
		a, err := MaxWeight(w)
		if err != nil {
			return false
		}
		seen := make(map[int]bool)
		for _, j := range a {
			if j == -1 {
				continue
			}
			if j < 0 || j >= n || seen[j] {
				return false
			}
			seen[j] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMaxWeightOptimalVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(4) // up to 5x5: brute force is 120 permutations
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, n)
			for j := range w[i] {
				w[i][j] = rng.Float64()
			}
		}
		a, err := MaxWeight(w)
		if err != nil {
			t.Fatal(err)
		}
		got := TotalWeight(w, a)
		best := bruteForce(w)
		if math.Abs(got-best) > 1e-9 {
			t.Fatalf("trial %d: hungarian=%g brute=%g matrix=%v", trial, got, best, w)
		}
	}
}

func bruteForce(w [][]float64) float64 {
	n := len(w)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(-1)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			var sum float64
			for i, j := range perm {
				sum += w[i][j]
			}
			if sum > best {
				best = sum
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best
}

func BenchmarkMaxWeight20x20(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	w := make([][]float64, 20)
	for i := range w {
		w[i] = make([]float64, 20)
		for j := range w[i] {
			w[i][j] = rng.Float64()
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MaxWeight(w); err != nil {
			b.Fatal(err)
		}
	}
}
