package match

import (
	"math"
	"sort"

	"prodsynth/internal/catalog"
	"prodsynth/internal/text"
)

// TitleIndex is an inverted index from tokens to products, used to match
// offer titles against structured product records at scale: instead of
// scanning every product in the category (O(|products|) per offer), a
// lookup touches only the posting lists of the title's tokens.
//
// Scoring is weighted token containment: each title token found in a
// product's token set contributes its IDF weight; the score is the
// fraction of the title's total IDF mass covered by the product. Rare
// tokens (model numbers, part codes) therefore dominate, which is what
// makes title matching work — "Hitachi" appears in hundreds of products,
// "HDT725050VLA360" in one.
//
// Build the index once per category with NewTitleIndex; Match is safe for
// concurrent use afterwards.
type TitleIndex struct {
	postings map[string][]int32 // token -> product ordinals (ascending)
	ids      []string           // ordinal -> product ID
	idf      map[string]float64
	numDocs  int
}

// NewTitleIndex indexes the token sets of the given products' attribute
// values.
func NewTitleIndex(products []catalog.Product) *TitleIndex {
	idx := &TitleIndex{
		postings: make(map[string][]int32),
		idf:      make(map[string]float64),
	}
	for _, p := range products {
		ord := int32(len(idx.ids))
		idx.ids = append(idx.ids, p.ID)
		seen := make(map[string]bool)
		for _, av := range p.Spec {
			for _, tok := range text.DefaultTokenizer.Tokenize(av.Value) {
				if !seen[tok] {
					seen[tok] = true
					idx.postings[tok] = append(idx.postings[tok], ord)
				}
			}
		}
	}
	idx.numDocs = len(idx.ids)
	for tok, posting := range idx.postings {
		idx.idf[tok] = math.Log(1 + float64(idx.numDocs)/float64(len(posting)))
	}
	return idx
}

// Len returns the number of indexed products.
func (idx *TitleIndex) Len() int { return idx.numDocs }

// Match returns the best-scoring product for the title and its score in
// [0,1], or ("", 0) when the index is empty or the title has no tokens.
// Ties break toward the product indexed first, keeping results
// deterministic.
func (idx *TitleIndex) Match(title string) (productID string, score float64) {
	tokens := text.DefaultTokenizer.Tokenize(title)
	if len(tokens) == 0 || idx.numDocs == 0 {
		return "", 0
	}
	// Deduplicate title tokens; containment counts each token once.
	uniq := tokens[:0]
	seen := make(map[string]bool, len(tokens))
	for _, tok := range tokens {
		if !seen[tok] {
			seen[tok] = true
			uniq = append(uniq, tok)
		}
	}

	var totalMass float64
	accum := make(map[int32]float64)
	for _, tok := range uniq {
		w, ok := idx.idf[tok]
		if !ok {
			// Unknown tokens still count toward the denominator with
			// the maximum IDF: a title full of tokens the catalog has
			// never seen should not match anything confidently.
			totalMass += math.Log(1 + float64(idx.numDocs))
			continue
		}
		totalMass += w
		for _, ord := range idx.postings[tok] {
			accum[ord] += w
		}
	}
	if totalMass == 0 || len(accum) == 0 {
		return "", 0
	}

	bestOrd := int32(-1)
	bestMass := 0.0
	ords := make([]int32, 0, len(accum))
	for ord := range accum {
		ords = append(ords, ord)
	}
	sort.Slice(ords, func(i, j int) bool { return ords[i] < ords[j] })
	for _, ord := range ords {
		if accum[ord] > bestMass {
			bestMass = accum[ord]
			bestOrd = ord
		}
	}
	if bestOrd < 0 {
		return "", 0
	}
	return idx.ids[bestOrd], bestMass / totalMass
}
