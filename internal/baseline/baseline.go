// Package baseline defines the shared contract for the schema-matching
// baselines the paper compares against in §5.2 (Figures 6-9): DUMAS, the
// LSD-style instance Naive Bayes matcher, and the COMA++-style name and
// instance matchers. Each baseline scores the same candidate universe —
// every (catalog attribute, merchant attribute, merchant, category) tuple —
// so precision-at-coverage curves are directly comparable with the paper's
// classifier.
package baseline

import (
	"sort"

	"prodsynth/internal/catalog"
	"prodsynth/internal/correspond"
	"prodsynth/internal/match"
	"prodsynth/internal/offer"
)

// Matcher scores candidate attribute correspondences. Implementations must
// return one Scored per candidate in the universe, sorted by descending
// score.
type Matcher interface {
	// Name identifies the configuration for reports ("DUMAS",
	// "Name-based COMA++", ...).
	Name() string
	// Score computes candidate scores. matches may be ignored by
	// matchers that do not use instance-level associations.
	Score(store *catalog.Store, offers *offer.Set, matches *match.MatchSet) []correspond.Scored
}

// Candidates enumerates the candidate universe in deterministic order: for
// every (merchant, category) pair present in offers, the cross product of
// the category schema and the merchant's observed attributes.
func Candidates(store *catalog.Store, offers *offer.Set) []correspond.Candidate {
	var out []correspond.Candidate
	for _, key := range offers.SchemaKeys() {
		cat, ok := store.Category(key.CategoryID)
		if !ok {
			continue
		}
		merchantAttrs := offers.MerchantAttributes(key)
		if len(merchantAttrs) == 0 {
			continue
		}
		catalogAttrs := cat.Schema.Names()
		sort.Strings(catalogAttrs)
		for _, ap := range catalogAttrs {
			for _, ao := range merchantAttrs {
				out = append(out, correspond.Candidate{
					Key: key, CatalogAttr: ap, MerchantAttr: ao,
				})
			}
		}
	}
	return out
}

// SortScored orders scored candidates by descending score with
// deterministic tie-breaking; shared by all matcher implementations.
func SortScored(s []correspond.Scored) {
	sort.SliceStable(s, func(i, j int) bool {
		if s[i].Score != s[j].Score {
			return s[i].Score > s[j].Score
		}
		a, b := s[i].Candidate, s[j].Candidate
		if a.Key != b.Key {
			if a.Key.Merchant != b.Key.Merchant {
				return a.Key.Merchant < b.Key.Merchant
			}
			return a.Key.CategoryID < b.Key.CategoryID
		}
		if a.CatalogAttr != b.CatalogAttr {
			return a.CatalogAttr < b.CatalogAttr
		}
		return a.MerchantAttr < b.MerchantAttr
	})
}
