package distsim_test

import (
	"fmt"

	"prodsynth/internal/distsim"
	"prodsynth/internal/text"
)

// ExampleJS reproduces Figure 5(d) of the paper: after restricting to
// matched offers, the catalog attribute Speed and the merchant attribute
// RPM have identical value distributions (divergence 0.00), while Speed vs
// Int. Type are disjoint (0.69 = ln 2).
func ExampleJS() {
	speed := text.NewBag()
	for _, v := range []string{"5400", "7200", "5400", "7200"} {
		speed.AddValue(v)
	}
	rpm := text.NewBag()
	for _, v := range []string{"5400", "7200", "5400", "7200"} {
		rpm.AddValue(v)
	}
	intType := text.NewBag()
	for _, v := range []string{"ATA 100 mb/s", "IDE 133 mb/s", "IDE 133 mb/s", "ATA 133 mb/s"} {
		intType.AddValue(v)
	}

	fmt.Printf("JS(Speed, RPM)       = %.2f\n", distsim.JS(speed.Distribution(), rpm.Distribution()))
	fmt.Printf("JS(Speed, Int. Type) = %.2f\n", distsim.JS(speed.Distribution(), intType.Distribution()))
	// Output:
	// JS(Speed, RPM)       = 0.00
	// JS(Speed, Int. Type) = 0.69
}

// ExampleJaroWinkler shows the prefix-boosted string similarity used
// inside SoftTFIDF.
func ExampleJaroWinkler() {
	fmt.Printf("%.3f\n", distsim.JaroWinkler("MARTHA", "MARHTA"))
	// Output:
	// 0.961
}
