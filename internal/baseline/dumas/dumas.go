// Package dumas reimplements the DUMAS schema matcher (Bilke & Naumann,
// ICDE 2005) as described in the paper's Appendix C. DUMAS leverages
// duplicate records — here, historical offer-to-product matches — to
// discover attribute correspondences:
//
//  1. For every matched (product p, offer o) pair of merchant M in category
//     C, build an m×n similarity matrix S_k where S_k[i][j] is the SoftTFIDF
//     similarity of merchant field value b_i and catalog field value a_j.
//  2. Average the matrices per (merchant, category): S_M = (1/T) Σ S_k.
//  3. Solve the maximum-weight bipartite matching over S_M; every matched
//     pair becomes a candidate correspondence scored by its cell value.
//
// Unmatched candidate pairs receive score 0, so coverage sweeps still see
// the full candidate universe.
package dumas

import (
	"prodsynth/internal/assign"
	"prodsynth/internal/baseline"
	"prodsynth/internal/catalog"
	"prodsynth/internal/correspond"
	"prodsynth/internal/distsim"
	"prodsynth/internal/match"
	"prodsynth/internal/offer"
)

// Matcher is the DUMAS baseline. The zero value uses SoftTFIDF θ = 0.9.
type Matcher struct {
	// Theta is the SoftTFIDF secondary-similarity threshold.
	Theta float64
}

// Name implements baseline.Matcher.
func (Matcher) Name() string { return "DUMAS" }

// Score implements baseline.Matcher.
func (m Matcher) Score(store *catalog.Store, offers *offer.Set, matches *match.MatchSet) []correspond.Scored {
	theta := m.Theta
	if theta == 0 {
		theta = 0.9
	}

	// Build one TF-IDF corpus per category over all field values, shared
	// by product and offer vectors.
	corpora := make(map[string]*distsim.Corpus)
	corpus := func(categoryID string) *distsim.Corpus {
		c := corpora[categoryID]
		if c == nil {
			c = distsim.NewCorpus()
			for _, p := range store.ProductsInCategory(categoryID) {
				for _, av := range p.Spec {
					c.AddDocument(av.Value)
				}
			}
			for _, o := range offers.ByCategory(categoryID) {
				for _, av := range o.Spec {
					c.AddDocument(av.Value)
				}
			}
			corpora[categoryID] = c
		}
		return c
	}

	// Accumulate the averaged similarity matrix per (merchant, category).
	// Attribute universes per key are fixed and sorted for determinism.
	type acc struct {
		merchantAttrs []string
		catalogAttrs  []string
		mIdx, cIdx    map[string]int
		sum           [][]float64
		count         int
	}
	accs := make(map[offer.SchemaKey]*acc)

	for _, key := range offers.SchemaKeys() {
		cat, ok := store.Category(key.CategoryID)
		if !ok {
			continue
		}
		mAttrs := offers.MerchantAttributes(key)
		if len(mAttrs) == 0 {
			continue
		}
		cAttrs := cat.Schema.Names()
		a := &acc{
			merchantAttrs: mAttrs,
			catalogAttrs:  cAttrs,
			mIdx:          make(map[string]int, len(mAttrs)),
			cIdx:          make(map[string]int, len(cAttrs)),
			sum:           make([][]float64, len(mAttrs)),
		}
		for i, n := range mAttrs {
			a.mIdx[n] = i
			a.sum[i] = make([]float64, len(cAttrs))
		}
		for j, n := range cAttrs {
			a.cIdx[n] = j
		}
		accs[key] = a
	}

	for _, o := range offers.All() {
		mt, ok := matches.ProductFor(o.ID)
		if !ok {
			continue
		}
		p, ok := store.Product(mt.ProductID)
		if !ok {
			continue
		}
		key := offer.SchemaKey{Merchant: o.Merchant, CategoryID: o.CategoryID}
		a := accs[key]
		if a == nil {
			continue
		}
		soft := distsim.SoftTFIDF{Corpus: corpus(o.CategoryID), Theta: theta}
		for _, bv := range o.Spec {
			i, ok := a.mIdx[bv.Name]
			if !ok {
				continue
			}
			for _, av := range p.Spec {
				j, ok := a.cIdx[av.Name]
				if !ok {
					continue
				}
				a.sum[i][j] += soft.Similarity(bv.Value, av.Value)
			}
		}
		a.count++
	}

	// Bipartite matching per (merchant, category); matched cells carry
	// their averaged similarity as the score.
	scores := make(map[correspond.Candidate]float64)
	for key, a := range accs {
		if a.count == 0 {
			continue
		}
		w := make([][]float64, len(a.merchantAttrs))
		for i := range w {
			w[i] = make([]float64, len(a.catalogAttrs))
			for j := range w[i] {
				w[i][j] = a.sum[i][j] / float64(a.count)
			}
		}
		assignment, err := assign.MaxWeight(w)
		if err != nil {
			continue // cannot happen: weights are finite by construction
		}
		for i, j := range assignment {
			if j < 0 || w[i][j] <= 0 {
				continue
			}
			c := correspond.Candidate{
				Key:          key,
				CatalogAttr:  a.catalogAttrs[j],
				MerchantAttr: a.merchantAttrs[i],
			}
			scores[c] = w[i][j]
		}
	}

	universe := baseline.Candidates(store, offers)
	out := make([]correspond.Scored, len(universe))
	for i, c := range universe {
		out[i] = correspond.Scored{Candidate: c, Score: scores[c]}
	}
	baseline.SortScored(out)
	return out
}
