package prodsynth

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func marketplace(t *testing.T) *Marketplace {
	t.Helper()
	return GenerateMarketplace(MarketplaceConfig{
		Seed:                21,
		CategoriesPerDomain: 2,
		ProductsPerCategory: 20,
		Merchants:           20,
	})
}

func TestSystemLifecycle(t *testing.T) {
	ds := marketplace(t)
	sys := New(ds.Catalog, Config{})

	// Before Learn, accessors are inert and Synthesize fails.
	if sys.Stats() != (OfflineStats{}) {
		t.Error("Stats before Learn should be zero")
	}
	if sys.Correspondences() != nil || sys.ScoredCandidates() != nil {
		t.Error("correspondences before Learn should be nil")
	}
	if _, err := sys.Synthesize(ds.IncomingOffers, MapFetcher(ds.Pages)); !errors.Is(err, ErrNotLearned) {
		t.Fatalf("Synthesize before Learn: err = %v, want ErrNotLearned", err)
	}
	if _, err := sys.SynthesizeBatches([][]Offer{ds.IncomingOffers}, MapFetcher(ds.Pages)); !errors.Is(err, ErrNotLearned) {
		t.Fatalf("SynthesizeBatches before Learn: err = %v, want ErrNotLearned", err)
	}

	if err := sys.Learn(ds.HistoricalOffers, MapFetcher(ds.Pages)); err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if st.TrainingSize == 0 || st.Correspondences == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if len(sys.Correspondences()) != st.Correspondences {
		t.Error("Correspondences length disagrees with stats")
	}
	if len(sys.ScoredCandidates()) != st.Candidates {
		t.Error("ScoredCandidates length disagrees with stats")
	}

	res, err := sys.Synthesize(ds.IncomingOffers, MapFetcher(ds.Pages))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Products) == 0 {
		t.Fatal("no products synthesized")
	}
	if res.PairsMapped == 0 || res.PairsDropped == 0 {
		t.Errorf("result = %+v", res)
	}
}

func TestAddToCatalog(t *testing.T) {
	ds := marketplace(t)
	sys := New(ds.Catalog, Config{})
	if err := sys.Learn(ds.HistoricalOffers, MapFetcher(ds.Pages)); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Synthesize(ds.IncomingOffers, MapFetcher(ds.Pages))
	if err != nil {
		t.Fatal(err)
	}
	before := ds.Catalog.NumProducts()
	report := sys.AddToCatalog(res.Products, "synth")
	if report.Added == 0 {
		t.Fatalf("added = 0, report = %+v", report)
	}
	if got := ds.Catalog.NumProducts(); got != before+report.Added {
		t.Errorf("catalog grew by %d, want %d", got-before, report.Added)
	}
	// Adding the same products again collides on IDs: every product must be
	// reported as a key collision, not lumped in with schema violations.
	again := sys.AddToCatalog(res.Products, "synth")
	if again.Added != 0 || len(again.KeyCollisions) != len(res.Products) {
		t.Errorf("re-add: added=%d collisions=%d of %d", again.Added, len(again.KeyCollisions), len(res.Products))
	}
	if len(again.SchemaViolations) != 0 {
		t.Errorf("re-add reported %d schema violations, want 0", len(again.SchemaViolations))
	}
	if got := len(again.Skipped()); got != len(res.Products) {
		t.Errorf("Skipped() = %d, want %d", got, len(res.Products))
	}
}

// TestAddToCatalogSeparatesCauses feeds AddToCatalog one well-formed
// product, one ID-colliding product, and one schema-violating product, and
// checks each lands in the right bucket.
func TestAddToCatalogSeparatesCauses(t *testing.T) {
	store := NewCatalog()
	if err := store.AddCategory(Category{
		ID: "hd", Name: "Hard Drives",
		Schema: Schema{Attributes: []Attribute{
			{Name: "Brand"}, {Name: AttrMPN, Kind: KindIdentifier},
		}},
	}); err != nil {
		t.Fatal(err)
	}
	sys := New(store, Config{})

	good := Synthesized{CategoryID: "hd", Key: "MPN1", Spec: Spec{{Name: "Brand", Value: "Seagate"}}}
	violating := Synthesized{CategoryID: "hd", Key: "MPN2", Spec: Spec{{Name: "Bogus", Value: "x"}}}

	first := sys.AddToCatalog([]Synthesized{good}, "synth")
	if first.Added != 1 || len(first.KeyCollisions)+len(first.SchemaViolations) != 0 {
		t.Fatalf("first add: %+v", first)
	}
	report := sys.AddToCatalog([]Synthesized{good, violating}, "synth")
	if report.Added != 0 {
		t.Errorf("Added = %d, want 0", report.Added)
	}
	if len(report.KeyCollisions) != 1 || report.KeyCollisions[0].Key != "MPN1" {
		t.Errorf("KeyCollisions = %+v", report.KeyCollisions)
	}
	if len(report.SchemaViolations) != 1 || report.SchemaViolations[0].Key != "MPN2" {
		t.Errorf("SchemaViolations = %+v", report.SchemaViolations)
	}
}

// TestAddToCatalogKeylessNoCrossCallCollision pins the fixed fallback-ID
// scheme: products with no cluster key used to get prefix-<i> IDs, so a
// second AddToCatalog call with the same prefix collided spuriously with
// the first call's keyless products. The store now reserves a unique
// generated ID under its lock, so every call's keyless products insert.
func TestAddToCatalogKeylessNoCrossCallCollision(t *testing.T) {
	store := NewCatalog()
	if err := store.AddCategory(Category{
		ID: "hd", Name: "Hard Drives",
		Schema: Schema{Attributes: []Attribute{{Name: "Brand"}}},
	}); err != nil {
		t.Fatal(err)
	}
	sys := New(store, Config{})
	keyless := func(brand string) []Synthesized {
		return []Synthesized{{CategoryID: "hd", Key: "", Spec: Spec{{Name: "Brand", Value: brand}}}}
	}
	first := sys.AddToCatalog(keyless("Seagate"), "synth")
	if first.Added != 1 {
		t.Fatalf("first call: %+v", first)
	}
	second := sys.AddToCatalog(keyless("Hitachi"), "synth")
	if second.Added != 1 || len(second.KeyCollisions) != 0 {
		t.Fatalf("second call with same prefix: %+v (cross-call keyless collision?)", second)
	}
	// Two keyless products within one call insert distinctly too.
	third := sys.AddToCatalog(append(keyless("WD"), keyless("Toshiba")...), "synth")
	if third.Added != 2 {
		t.Fatalf("third call: %+v", third)
	}
	if got := store.NumProducts(); got != 4 {
		t.Fatalf("catalog has %d products, want 4", got)
	}
}

// TestAddToCatalogKeylessConcurrent is the regression test for the
// keyless-ID race: fallback IDs used to be minted from NumProducts read
// outside the insert's critical section, so two concurrent AddToCatalog
// calls could read the same count, collide on the generated ID, and
// misreport perfectly valid products as KeyCollisions. IDs are now
// reserved under the store lock; run with -race to also catch the data
// race itself.
func TestAddToCatalogKeylessConcurrent(t *testing.T) {
	store := NewCatalog()
	if err := store.AddCategory(Category{
		ID: "hd", Name: "Hard Drives",
		Schema: Schema{Attributes: []Attribute{{Name: "Brand"}}},
	}); err != nil {
		t.Fatal(err)
	}
	sys := New(store, Config{})
	// Even a single-CPU machine must interleave the racy window: spread
	// the workers across OS threads, and release each round through a
	// barrier so every round's AddToCatalog calls race on the same store
	// state — the pre-fix count-outside-the-lock scheme collides quickly.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	const workers, perCall, rounds = 8, 2, 2000
	var added, collisions atomic.Int64
	for r := 0; r < rounds; r++ {
		start := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				batch := make([]Synthesized, perCall)
				for i := range batch {
					batch[i] = Synthesized{CategoryID: "hd", Key: "",
						Spec: Spec{{Name: "Brand", Value: "Seagate"}}}
				}
				<-start
				report := sys.AddToCatalog(batch, "synth")
				added.Add(int64(report.Added))
				collisions.Add(int64(len(report.KeyCollisions)))
			}()
		}
		close(start)
		wg.Wait()
	}
	want := int64(workers * perCall * rounds)
	if added.Load() != want || collisions.Load() != 0 {
		t.Fatalf("added %d of %d, %d spurious key collisions (keyless IDs raced?)",
			added.Load(), want, collisions.Load())
	}
	if got := store.NumProducts(); int64(got) != want {
		t.Fatalf("catalog has %d products, want %d", got, want)
	}
}

// TestAddToCatalogReportsShadowedKeys pins the surfacing half of the
// byKey fix at the System level: a synthesized product whose key is
// already owned by an existing catalog product is added (distinct ID)
// but reported in KeyShadowed, and the original keeps the key.
func TestAddToCatalogReportsShadowedKeys(t *testing.T) {
	store := NewCatalog()
	if err := store.AddCategory(Category{
		ID: "hd", Name: "Hard Drives",
		Schema: Schema{Attributes: []Attribute{
			{Name: "Brand"}, {Name: AttrMPN, Kind: KindIdentifier},
		}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := store.AddProduct(Product{ID: "orig-1", CategoryID: "hd",
		Spec: Spec{{Name: "Brand", Value: "Seagate"}, {Name: AttrMPN, Value: "MPN1"}}}); err != nil {
		t.Fatal(err)
	}
	sys := New(store, Config{})
	shadowing := Synthesized{CategoryID: "hd", Key: "MPN1", KeyAttr: AttrMPN,
		Spec: Spec{{Name: "Brand", Value: "Hitachi"}, {Name: AttrMPN, Value: "MPN1"}}}
	report := sys.AddToCatalog([]Synthesized{shadowing}, "synth")
	if report.Added != 1 || len(report.KeyCollisions) != 0 || len(report.SchemaViolations) != 0 {
		t.Fatalf("report = %+v, want 1 added and no rejections", report)
	}
	if len(report.KeyShadowed) != 1 || report.KeyShadowed[0].Key != "MPN1" {
		t.Fatalf("KeyShadowed = %+v, want the MPN1 product", report.KeyShadowed)
	}
	if p, ok := store.ProductByKey("MPN1"); !ok || p.ID != "orig-1" {
		t.Errorf("ProductByKey(MPN1) = %+v, %v; original must keep the key", p, ok)
	}
	if _, ok := store.Product("synth-MPN1"); !ok {
		t.Error("shadowed product was not inserted under its prefixed ID")
	}

	// The keyless path surfaces shadowing the same way: an empty cluster
	// key does not mean the spec carries no UPC/MPN.
	keylessShadowing := Synthesized{CategoryID: "hd", Key: "",
		Spec: Spec{{Name: "Brand", Value: "WD"}, {Name: AttrMPN, Value: "MPN1"}}}
	report = sys.AddToCatalog([]Synthesized{keylessShadowing}, "synth")
	if report.Added != 1 || len(report.KeyShadowed) != 1 {
		t.Fatalf("keyless shadowing report = %+v, want 1 added and 1 shadowed", report)
	}
	if p, ok := store.ProductByKey("MPN1"); !ok || p.ID != "orig-1" {
		t.Errorf("after keyless shadowing, ProductByKey(MPN1) = %+v, %v; want orig-1", p, ok)
	}
}

// productFingerprints renders products comparably across runs.
func productFingerprints(products []Synthesized) []string {
	out := make([]string, len(products))
	for i, p := range products {
		out[i] = fmt.Sprintf("%s/%s=%s %v %s", p.CategoryID, p.KeyAttr, p.Key, p.OfferIDs, p.Spec.String())
	}
	return out
}

// TestSynthesizeBatchesMatchesOneShot is the batch-API determinism
// acceptance test: a single batch holding all offers must produce exactly
// the one-shot Synthesize output, and repeated batch runs must agree with
// each other.
func TestSynthesizeBatchesMatchesOneShot(t *testing.T) {
	ds := marketplace(t)
	sys := New(ds.Catalog, Config{})
	if err := sys.Learn(ds.HistoricalOffers, MapFetcher(ds.Pages)); err != nil {
		t.Fatal(err)
	}
	oneShot, err := sys.Synthesize(ds.IncomingOffers, MapFetcher(ds.Pages))
	if err != nil {
		t.Fatal(err)
	}

	batched, err := sys.SynthesizeBatches([][]Offer{ds.IncomingOffers}, MapFetcher(ds.Pages))
	if err != nil {
		t.Fatal(err)
	}
	if len(batched.Batches) != 1 {
		t.Fatalf("Batches = %d, want 1", len(batched.Batches))
	}
	want := productFingerprints(oneShot.Products)
	got := productFingerprints(batched.Total.Products)
	if len(got) != len(want) {
		t.Fatalf("products: %d batched vs %d one-shot", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("product %d differs:\n  batched:  %s\n  one-shot: %s", i, got[i], want[i])
		}
	}
	if batched.Total.PairsMapped != oneShot.PairsMapped ||
		batched.Total.PairsDropped != oneShot.PairsDropped ||
		batched.Total.OffersWithoutKey != oneShot.OffersWithoutKey ||
		batched.Total.ExcludedMatched != oneShot.ExcludedMatched {
		t.Errorf("counters differ: batched %+v vs one-shot %+v", batched.Total, *oneShot)
	}

	// Split runs are deterministic run-to-run, and their counters aggregate.
	split := [][]Offer{
		ds.IncomingOffers[:len(ds.IncomingOffers)/2],
		ds.IncomingOffers[len(ds.IncomingOffers)/2:],
	}
	b1, err := sys.SynthesizeBatches(split, MapFetcher(ds.Pages))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := sys.SynthesizeBatches(split, MapFetcher(ds.Pages))
	if err != nil {
		t.Fatal(err)
	}
	f1, f2 := productFingerprints(b1.Total.Products), productFingerprints(b2.Total.Products)
	if len(f1) != len(f2) {
		t.Fatalf("split runs disagree on product count: %d vs %d", len(f1), len(f2))
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Errorf("split runs differ at product %d", i)
		}
	}
	sum := 0
	for _, r := range b1.Batches {
		sum += len(r.Products)
	}
	if sum != len(b1.Total.Products) {
		t.Errorf("Total.Products = %d, want sum of batches %d", len(b1.Total.Products), sum)
	}

	// Per-batch stats: every batch reports its offer count, match/fusion
	// counts, and a non-zero wall time; totals aggregate them.
	var offers, clusters int
	var elapsed time.Duration
	for i, r := range b1.Batches {
		if r.Offers != len(split[i]) {
			t.Errorf("batch %d Offers = %d, want %d", i, r.Offers, len(split[i]))
		}
		if r.Clusters != len(r.Products) {
			t.Errorf("batch %d Clusters = %d, want %d (one product per cluster)", i, r.Clusters, len(r.Products))
		}
		if r.Elapsed <= 0 {
			t.Errorf("batch %d Elapsed = %v, want > 0", i, r.Elapsed)
		}
		offers += r.Offers
		clusters += r.Clusters
		elapsed += r.Elapsed
	}
	if b1.Total.Offers != offers || b1.Total.Offers != len(ds.IncomingOffers) {
		t.Errorf("Total.Offers = %d, want %d (= %d incoming)", b1.Total.Offers, offers, len(ds.IncomingOffers))
	}
	if b1.Total.Clusters != clusters {
		t.Errorf("Total.Clusters = %d, want %d", b1.Total.Clusters, clusters)
	}
	if b1.Total.Elapsed != elapsed {
		t.Errorf("Total.Elapsed = %v, want summed %v", b1.Total.Elapsed, elapsed)
	}
}

// TestSynthesizeSeesCatalogGrowth closes the loop through the index
// registry: after AddToCatalog commits wave-1 products, re-synthesizing
// the same offers must see them match the grown catalog (stale category
// indexes evicted), excluding them from synthesis.
func TestSynthesizeSeesCatalogGrowth(t *testing.T) {
	ds := marketplace(t)
	sys := New(ds.Catalog, Config{})
	if err := sys.Learn(ds.HistoricalOffers, MapFetcher(ds.Pages)); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Synthesize(ds.IncomingOffers, MapFetcher(ds.Pages))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Products) == 0 {
		t.Fatal("no products synthesized")
	}
	report := sys.AddToCatalog(res.Products, "synth")
	if report.Added == 0 {
		t.Fatalf("nothing added: %+v", report)
	}

	again, err := sys.Synthesize(ds.IncomingOffers, MapFetcher(ds.Pages))
	if err != nil {
		t.Fatal(err)
	}
	if again.ExcludedMatched <= res.ExcludedMatched {
		t.Errorf("after catalog growth ExcludedMatched = %d, want > %d (stale indexes not evicted?)",
			again.ExcludedMatched, res.ExcludedMatched)
	}
	if len(again.Products) >= len(res.Products) {
		t.Errorf("after catalog growth synthesized %d products, want < %d",
			len(again.Products), len(res.Products))
	}
}

func TestBuildCatalogByHand(t *testing.T) {
	store := NewCatalog()
	err := store.AddCategory(Category{
		ID: "hd", Name: "Hard Drives", TopLevel: "Computing",
		Schema: Schema{Attributes: []Attribute{
			{Name: "Brand", Kind: KindCategorical},
			{Name: "Capacity", Kind: KindNumeric, Unit: "GB"},
			{Name: AttrMPN, Kind: KindIdentifier},
			{Name: AttrUPC, Kind: KindIdentifier},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = store.AddProduct(Product{
		ID: "p1", CategoryID: "hd",
		Spec: Spec{
			{Name: "Brand", Value: "Seagate"},
			{Name: "Capacity", Value: "500"},
			{Name: AttrMPN, Value: "ST3500"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if store.NumProducts() != 1 || store.NumCategories() != 1 {
		t.Error("counts wrong")
	}
}
