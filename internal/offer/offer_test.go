package offer

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"prodsynth/internal/catalog"
)

func sampleOffers() []Offer {
	return []Offer{
		{
			ID: "o1", Merchant: "amazon", CategoryID: "computing/hard-drives",
			Title: "Hitachi Deskstar T7K500 - hard drive - 500 GB - SATA-300",
			URL:   "http://amazon.example/o1", PriceCents: 6700,
			Spec: catalog.Spec{
				{Name: "Brand", Value: "Hitachi"},
				{Name: "Hard Disk Size", Value: "500"},
			},
		},
		{
			ID: "o2", Merchant: "microwarehouse", CategoryID: "computing/hard-drives",
			Title: "Hitachi 500GB S/ATA2 7200rpm", URL: "http://mw.example/o2", PriceCents: 7100,
			Spec: catalog.Spec{
				{Name: "Manufacturer", Value: "Hitachi"},
				{Name: "Capacity", Value: "500 GB"},
			},
		},
		{
			ID: "o3", Merchant: "amazon", CategoryID: "cameras/digital",
			Title: "Canon EOS", URL: "http://amazon.example/o3", PriceCents: 49900,
		},
	}
}

func TestSetIndexing(t *testing.T) {
	s := NewSet(sampleOffers())
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	mc := s.ByMerchantCategory(SchemaKey{Merchant: "amazon", CategoryID: "computing/hard-drives"})
	if len(mc) != 1 || mc[0].ID != "o1" {
		t.Errorf("ByMerchantCategory = %v", mc)
	}
	if got := s.ByCategory("computing/hard-drives"); len(got) != 2 {
		t.Errorf("ByCategory = %d offers", len(got))
	}
	if got := s.ByMerchant("amazon"); len(got) != 2 {
		t.Errorf("ByMerchant = %d offers", len(got))
	}
	if got := s.Categories(); !reflect.DeepEqual(got, []string{"cameras/digital", "computing/hard-drives"}) {
		t.Errorf("Categories = %v", got)
	}
	if got := s.Merchants(); !reflect.DeepEqual(got, []string{"amazon", "microwarehouse"}) {
		t.Errorf("Merchants = %v", got)
	}
	keys := s.SchemaKeys()
	if len(keys) != 3 {
		t.Errorf("SchemaKeys = %v", keys)
	}
	if keys[0].String() != "amazon@cameras/digital" {
		t.Errorf("key order/String = %v", keys[0])
	}
}

func TestMerchantAttributes(t *testing.T) {
	s := NewSet(sampleOffers())
	got := s.MerchantAttributes(SchemaKey{Merchant: "microwarehouse", CategoryID: "computing/hard-drives"})
	want := []string{"Capacity", "Manufacturer"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("MerchantAttributes = %v, want %v", got, want)
	}
	if got := s.MerchantAttributes(SchemaKey{Merchant: "none", CategoryID: "x"}); len(got) != 0 {
		t.Errorf("missing key should be empty, got %v", got)
	}
}

func TestOfferClone(t *testing.T) {
	o := sampleOffers()[0]
	c := o.Clone()
	c.Spec.Set("Brand", "MUTATED")
	if v, _ := o.Spec.Get("Brand"); v != "Hitachi" {
		t.Error("Clone aliased spec")
	}
}

func TestFeedRoundTrip(t *testing.T) {
	offers := sampleOffers()
	var buf bytes.Buffer
	if err := WriteFeed(&buf, offers); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFeed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, offers) {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", got, offers)
	}
}

func TestFeedRoundTripQuick(t *testing.T) {
	f := func(id, merchant, title string, price int64, attr, val string) bool {
		if price < 0 {
			price = -price
		}
		in := []Offer{{
			ID: sanitizeField(id), Merchant: sanitizeField(merchant),
			CategoryID: "c", Title: sanitizeField(title), PriceCents: price,
			URL: "http://x", Spec: catalog.Spec{{Name: "a", Value: "v"}},
		}}
		// attr/val go through the spec encoder, which strips structure chars.
		_ = attr
		_ = val
		var buf bytes.Buffer
		if err := WriteFeed(&buf, in); err != nil {
			return false
		}
		out, err := ReadFeed(&buf)
		return err == nil && len(out) == 1 && out[0].PriceCents == price
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFeedSanitization(t *testing.T) {
	offers := []Offer{{
		ID: "o1", Merchant: "m", CategoryID: "c",
		Title: "has\ttab and\nnewline", PriceCents: 1, URL: "u",
		Spec: catalog.Spec{{Name: "A=B|C", Value: "v=w|x"}},
	}}
	var buf bytes.Buffer
	if err := WriteFeed(&buf, offers); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFeed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if strings.ContainsAny(got[0].Title, "\t\n") {
		t.Errorf("title not sanitized: %q", got[0].Title)
	}
	if len(got[0].Spec) != 1 {
		t.Fatalf("spec = %v", got[0].Spec)
	}
}

func TestReadFeedErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"bad header", "nope\no1\tm\tc\tt\t1\tu\ti\t"},
		{"short row", "id\tmerchant\tcategory\ttitle\tprice_cents\turl\timage\tspec\no1\tm\n"},
		{"bad price", "id\tmerchant\tcategory\ttitle\tprice_cents\turl\timage\tspec\no1\tm\tc\tt\tNaN\tu\ti\t\n"},
		{"bad spec", "id\tmerchant\tcategory\ttitle\tprice_cents\turl\timage\tspec\no1\tm\tc\tt\t1\tu\ti\tnoequals\n"},
	}
	for _, c := range cases {
		if _, err := ReadFeed(strings.NewReader(c.in)); !errors.Is(err, ErrBadFeed) {
			t.Errorf("%s: err = %v, want ErrBadFeed", c.name, err)
		}
	}
}

func TestReadFeedSkipsBlankLines(t *testing.T) {
	in := "id\tmerchant\tcategory\ttitle\tprice_cents\turl\timage\tspec\n\no1\tm\tc\tt\t1\tu\ti\t\n"
	got, err := ReadFeed(strings.NewReader(in))
	if err != nil || len(got) != 1 {
		t.Errorf("got %v, err %v", got, err)
	}
}

func BenchmarkFeedRoundTrip(b *testing.B) {
	offers := make([]Offer, 1000)
	for i := range offers {
		offers[i] = sampleOffers()[i%3]
	}
	var buf bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteFeed(&buf, offers); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadFeed(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}
