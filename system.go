package prodsynth

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"prodsynth/internal/catalog"
	"prodsynth/internal/core"
	"prodsynth/internal/fetch"
	"prodsynth/internal/stream"
)

// wrapFetch applies the config's fetch policy around the caller's
// fetcher. Wrapping happens once per run (or once per stream), never per
// offer or per wave, so the returned fetcher's breaker state, concurrency
// gate, and counters span the whole run. A disabled policy (the zero
// value) or a nil fetcher passes through untouched — and a caller who
// pre-wrapped with NewResilientFetcher is not double-wrapped.
func wrapFetch(pages core.PageFetcher, cfg Config) core.PageFetcher {
	if pages == nil || !cfg.Fetch.Enabled() {
		return pages
	}
	if _, ok := pages.(*fetch.Resilient); ok {
		return pages
	}
	return fetch.NewResilient(pages, cfg.Fetch)
}

// System is the runtime half of the pipeline: it ties a catalog to a
// learned Model and serves synthesis over them. Build one with NewSystem
// from a Model (Learn or LoadModel), so a System is never "not learned";
// in a long-lived process, swap in a re-learned Model atomically with Use
// while synthesis traffic is in flight.
//
// The deprecated v1 constructor New builds a System without a Model; only
// on that path can the synthesis entry points return ErrNotLearned.
type System struct {
	store *Catalog
	cfg   Config
	// slot holds the served model together with its generation number, in
	// one pointer, so a synthesis call pins a consistent (model,
	// generation) pair with a single atomic load — a concurrent Use can
	// never make a result report the wrong model's generation.
	slot atomic.Pointer[modelSlot]
	// gen mints generation numbers: 1 for the Model a System is built
	// with, +1 per Use. Monotonic for the lifetime of the System.
	gen atomic.Uint64
}

// modelSlot is the atomically swapped unit behind System.Use.
type modelSlot struct {
	model *Model
	gen   uint64
}

// NewSystem creates a System serving synthesis over a catalog with a
// learned Model. The zero Config (no options) applies the paper's
// defaults; pass WithConfig or the finer-grained options to tune the
// runtime pipeline. The Model it is built with is generation 1.
func NewSystem(store *Catalog, model *Model, opts ...Option) *System {
	s := &System{store: store, cfg: buildConfig(opts)}
	var g uint64
	if model != nil {
		g = s.gen.Add(1)
	}
	s.slot.Store(&modelSlot{model: model, gen: g})
	return s
}

// Use atomically swaps the System's Model: synthesis calls that started
// before the swap finish against the old model, calls that start after it
// use the new one. This is the hot-reload path for a serving process that
// re-learns (or re-loads) its model without downtime. Every swap bumps the
// System's model generation (see Generation); a nil model resets the
// System to the unlearned state (ErrNotLearned).
func (s *System) Use(model *Model) {
	s.slot.Store(&modelSlot{model: model, gen: s.gen.Add(1)})
}

// Model returns the Model the System currently serves with, or nil on the
// deprecated v1 path before Learn.
func (s *System) Model() *Model { return s.slot.Load().model }

// Generation returns the generation number of the Model the System
// currently serves with: 1 for the Model passed to NewSystem, incremented
// by every Use. Zero only on the deprecated v1 path before Learn. A
// serving process exposes this as the observable marker of a completed
// hot reload, and every Result reports the generation that produced it
// (Result.ModelGeneration), so responses spanning a swap are attributable
// to exactly one model.
func (s *System) Generation() uint64 { return s.slot.Load().gen }

// current is the nil-guarded slot fetch shared by the synthesis entry
// points: one atomic load, so a concurrent Use cannot change the model —
// or detach it from its generation — mid-call.
func (s *System) current() (*modelSlot, error) {
	sl := s.slot.Load()
	if sl.model == nil {
		return nil, ErrNotLearned
	}
	return sl, nil
}

// Result is the outcome of a synthesis run.
type Result struct {
	// Products are the synthesized product instances.
	Products []Synthesized
	// PairsDropped counts extracted attribute-value pairs discarded for
	// lack of a correspondence (the noise filter of §4).
	PairsDropped int
	// PairsMapped counts pairs translated into catalog vocabulary.
	PairsMapped int
	// OffersWithoutKey counts reconciled offers that could not be
	// clustered because no key attribute survived reconciliation.
	OffersWithoutKey int
	// ExcludedMatched counts incoming offers dropped because they match
	// an existing catalog product — the run's match count against the
	// warm indexes.
	ExcludedMatched int
	// Offers is the number of incoming offers the run processed.
	Offers int
	// Clusters is the number of offer clusters value fusion synthesized
	// from (one synthesized product per cluster).
	Clusters int
	// Elapsed is the wall-clock duration of the run. In a BatchResult it
	// makes the per-batch cost of a wave visible next to its match and
	// fusion counts.
	Elapsed time.Duration
	// ModelGeneration is the System.Generation of the Model this result
	// was synthesized against. The model is pinned per call (per batch
	// run, per stream), so every product in one Result comes from this one
	// generation even when a Use swap lands mid-run.
	ModelGeneration uint64
	// Fetch accounts the run's landing-page fetches: operation counters
	// (exact when a FetchPolicy or other counter-keeping fetcher is in
	// use) and the sorted IDs of offers that proceeded feed-only because
	// their page could not be fetched — lenient mode's observable
	// graceful degradation.
	Fetch FetchReport
	// Err is set on a per-batch Result inside BatchResult (or a
	// StreamResult) when that batch failed; the other fields are zero
	// except Offers. A failed batch does not stop later batches. Always
	// nil on a Result returned directly by SynthesizeContext, which
	// reports failure through its error return instead.
	Err error
}

// SynthesizeContext runs the runtime pipeline (§4) over incoming offers:
// extraction, schema reconciliation, clustering, and value fusion, against
// the System's current Model. Cancelling ctx stops the pipeline's worker
// pools at the next stage boundary with ctx.Err() and leaks no goroutines.
func (s *System) SynthesizeContext(ctx context.Context, incoming []Offer, pages PageFetcher) (*Result, error) {
	sl, err := s.current()
	if err != nil {
		return nil, err
	}
	return s.synthesize(ctx, sl, incoming, wrapFetch(pages, s.cfg))
}

// synthesize runs one batch against a pinned model slot — the shared core
// of the one-shot and batch entry points.
func (s *System) synthesize(ctx context.Context, sl *modelSlot, incoming []Offer, pages PageFetcher) (*Result, error) {
	start := time.Now()
	run, err := core.RunRuntime(ctx, s.store, sl.model.offline, incoming, pages, s.cfg)
	if err != nil {
		return nil, err
	}
	return &Result{
		Products:         run.Products,
		PairsDropped:     run.Reconcile.PairsDropped,
		PairsMapped:      run.Reconcile.PairsMapped,
		OffersWithoutKey: len(run.SkippedNoKey),
		ExcludedMatched:  run.ExcludedMatched,
		Offers:           len(incoming),
		Clusters:         run.Clusters.Clusters,
		Elapsed:          time.Since(start),
		ModelGeneration:  sl.gen,
		Fetch:            run.Fetch,
	}, nil
}

// BatchResult is the outcome of a SynthesizeBatchesContext run.
type BatchResult struct {
	// Batches holds one Result per input batch, in input order; each
	// carries its own wall time and match/fusion counts. A batch that
	// failed has Err set and contributes nothing but its offer count.
	Batches []*Result
	// Failed counts batches whose Result carries a non-nil Err.
	Failed int
	// Total aggregates every successful batch: concatenated Products
	// (batch order) and summed counters. Total.Elapsed sums the
	// per-batch run times (batches run sequentially, so it is also the
	// run's wall time minus failed batches).
	Total Result
}

// SynthesizeBatchesContext runs the runtime pipeline over a sequence of
// offer batches — the serving shape of the system, where offer feeds
// arrive in waves. The learned model and the matcher's per-category
// indexes are reused across batches, so every batch after the first runs
// against warm state; a batch containing all offers at once is equivalent
// to a single SynthesizeContext call. Offers are clustered within their
// batch: a product whose offers are split across batches synthesizes once
// per batch it appears in — use SynthesizeStream for cross-batch cluster
// memory.
//
// The Model is pinned once for the whole run, so a concurrent Use swap
// never splits a batch sequence across two models. A batch that fails
// (e.g. under Config.StrictPages) records its error in that batch's
// Result.Err and the run continues — except for ctx cancellation, which
// stops the run and returns ctx.Err().
func (s *System) SynthesizeBatchesContext(ctx context.Context, batches [][]Offer, pages PageFetcher) (*BatchResult, error) {
	sl, err := s.current()
	if err != nil {
		return nil, err
	}
	out := &BatchResult{Batches: make([]*Result, 0, len(batches))}
	out.Total.ModelGeneration = sl.gen
	// One wrap for the whole sequence: breaker state and fetch counters
	// span every batch, like a serving process's crawl client would.
	pages = wrapFetch(pages, s.cfg)
	for _, batch := range batches {
		res, err := s.synthesize(ctx, sl, batch, pages)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			out.Batches = append(out.Batches, &Result{Offers: len(batch), ModelGeneration: sl.gen, Err: err})
			out.Failed++
			continue
		}
		out.Batches = append(out.Batches, res)
		out.Total.Products = append(out.Total.Products, res.Products...)
		out.Total.PairsDropped += res.PairsDropped
		out.Total.PairsMapped += res.PairsMapped
		out.Total.OffersWithoutKey += res.OffersWithoutKey
		out.Total.ExcludedMatched += res.ExcludedMatched
		out.Total.Offers += res.Offers
		out.Total.Clusters += res.Clusters
		out.Total.Elapsed += res.Elapsed
		out.Total.Fetch.Add(res.Fetch)
	}
	return out, nil
}

// StreamOptions tunes SynthesizeStream. The zero value keeps unbounded
// cluster memory and an unbuffered result channel.
type StreamOptions struct {
	// MaxOpenClusters bounds the cross-batch cluster memory: past the
	// bound, the least recently extended clusters are forgotten (a later
	// offer with a forgotten cluster's key synthesizes a duplicate, as a
	// memory-less batch run would). 0 means unbounded.
	MaxOpenClusters int
	// MaxIdleWaves forgets clusters no wave has extended for more than
	// this many consecutive waves — a TTL measured in waves, so behaviour
	// is deterministic for a given wave sequence. 0 means never.
	MaxIdleWaves int
	// DisableClusterMemory makes every wave cluster independently,
	// reproducing SynthesizeBatchesContext semantics wave for wave.
	DisableClusterMemory bool
	// Buffer is the result channel's capacity. 0 (unbuffered) applies
	// backpressure on the fuse stage: it runs at most one wave ahead of
	// the consumer (the wave whose result is being delivered). Larger
	// values let it run further ahead. The prepare stage additionally
	// works ahead of fuse by up to 1+Config.StageBuffer waves (see
	// WithStageBuffer) unless cross-wave pipelining is disabled.
	Buffer int
	// FetchPolicy overrides the System's Config.Fetch for this stream:
	// non-nil, the stream wraps its fetcher under this policy instead
	// (set to new(FetchPolicy) — the zero policy — to disable wrapping
	// for a stream on a System that has one configured). The wrap spans
	// the whole stream, so breaker state and FetchReport counters carry
	// across waves.
	FetchPolicy *FetchPolicy
}

// SealReason says why a cluster was sealed — why the stream's cross-batch
// cluster memory decided it can no longer grow.
type SealReason = stream.SealReason

// The seal reasons carried by ClusterSealed events.
const (
	// SealClose: the input channel closed; every cluster still open seals
	// on the final result.
	SealClose = stream.SealClose
	// SealLRU: the cluster was evicted as least recently extended when the
	// open set exceeded StreamOptions.MaxOpenClusters.
	SealLRU = stream.SealLRU
	// SealIdle: no wave extended the cluster for more than
	// StreamOptions.MaxIdleWaves consecutive waves.
	SealIdle = stream.SealIdle
	// SealInvalidated: AddToCatalog grew the catalog mid-stream in one of
	// the cluster's member categories, so the cluster was dropped rather
	// than extended (its product may now exist in the catalog).
	SealInvalidated = stream.SealInvalidated
)

// ClusterSealed is one per-cluster seal event on a StreamResult: the
// stream's cluster memory decided this cluster can no longer grow, so its
// Product is final rather than provisional — the signal a consumer
// committing products downstream (AddToCatalog, an export feed) waits for
// instead of re-committing every re-fused emission. ClusterIDs are unique
// for the lifetime of one stream and every cluster seals exactly once:
// through one eviction reason mid-stream, or through SealClose on the
// final result (whose Sealed events align 1:1 with its merged Products).
type ClusterSealed = stream.Sealed

// StreamResult is one emission of SynthesizeStream: the embedded Result
// carries the wave's products and counters (or Err for a failed wave).
type StreamResult struct {
	Result
	// Wave is the 0-based wave index; on the final result, the number of
	// waves consumed.
	Wave int
	// OpenClusters is the cluster-memory size after the wave — the
	// quantity StreamOptions.MaxOpenClusters bounds. Zero when cluster
	// memory is disabled.
	OpenClusters int
	// SpilledClusters is the number of clusters parked out-of-core in the
	// spill store after the wave. Zero unless the Config carries a spill
	// factory (see WithDurability).
	SpilledClusters int
	// Final marks the single closing result: its Products are the merged
	// stream view (final fused state of every remembered cluster, in
	// first-appearance order) and its counters aggregate all successful
	// waves. For an uninterrupted stream with unbounded memory and no
	// mid-stream catalog growth, the final Products are byte-identical
	// to a one-shot SynthesizeContext over the concatenated waves.
	Final bool
	// Sealed are the clusters this result sealed: per-wave results carry
	// the wave's evictions (LRU, idle-TTL, catalog invalidation), each
	// with the cluster's final fused product; the Final result carries one
	// SealClose event per merged product, aligned 1:1 with its Products.
	// Empty when cluster memory is disabled (nothing is provisional then —
	// every wave's products are already final).
	Sealed []ClusterSealed
}

// SynthesizeStream runs the runtime pipeline as a long-lived feed
// consumer: offer waves are read from waves, processed in order against
// the warm matcher state, and one StreamResult per wave is delivered on
// the returned channel, followed by a closing Final result when waves is
// closed. Unlike SynthesizeBatchesContext, clusters stay open across waves
// in a cross-batch cluster memory: an offer arriving in wave n whose key
// matches a cluster synthesized in an earlier wave joins that cluster,
// and the wave's result carries the product re-fused over the union of
// evidence — the product synthesizes once, not once per wave. The memory
// is bounded through StreamOptions and invalidated per category when
// AddToCatalog grows the catalog mid-stream (the same version counters
// that refresh the matcher's indexes), since such clusters' products may
// now be matched — and excluded — against the catalog itself.
//
// The stream executes as two pull-based stages — prepare (classify,
// extract, match-exclude, reconcile) and fuse (cluster memory, value
// fusion) — with a bounded buffer between them, so wave n+1's prepare
// overlaps wave n's fuse while results are still emitted in input order,
// byte-identical to barrier execution (WithStageBuffer tunes or disables
// the overlap). Each result's Sealed field carries the stream's
// ClusterSealed events: the products that just became final (see
// ClusterSealed for the consumer contract).
//
// The stream pins the Model current when it starts; a later Use swap
// affects subsequent calls, not a stream already in flight. A failed wave
// (e.g. under Config.StrictPages) reports its error in that wave's
// StreamResult.Err and the stream continues. Cancelling ctx stops the
// pipeline — whatever stage each in-flight wave is in — and closes the
// channel without the final result; every pipeline goroutine exits once
// ctx is cancelled or waves is closed, even if the consumer stops
// reading. A System built without a Model returns ErrNotLearned.
func (s *System) SynthesizeStream(ctx context.Context, waves <-chan []Offer, pages PageFetcher, opts StreamOptions) (<-chan StreamResult, error) {
	sl, err := s.current()
	if err != nil {
		return nil, err
	}
	cfg := s.cfg
	if opts.FetchPolicy != nil {
		cfg.Fetch = *opts.FetchPolicy
	}
	// The inner channel stays unbuffered regardless of opts.Buffer: the
	// forwarding goroutine already holds one result in flight, so any
	// inner capacity would let the pipeline run that much further ahead
	// than StreamOptions.Buffer promises.
	inner := stream.Run(ctx, s.store, sl.model.offline, waves, wrapFetch(pages, cfg), cfg, stream.Options{
		MaxOpenClusters: opts.MaxOpenClusters,
		MaxIdleWaves:    opts.MaxIdleWaves,
		DisableMemory:   opts.DisableClusterMemory,
	})
	out := make(chan StreamResult, opts.Buffer)
	//lint:allow spawncheck forwarder exits when inner closes (stream.Run closes it on cancel or input close), closing out; leak-guarded by TestStreamCtxCancelNoLeak
	go func() {
		defer close(out)
		for r := range inner {
			sr := StreamResult{
				Wave:            r.Wave,
				Final:           r.Final,
				OpenClusters:    r.OpenClusters,
				SpilledClusters: r.SpilledClusters,
				Sealed:          r.Sealed,
				Result: Result{
					Products:         r.Products,
					PairsDropped:     r.Reconcile.PairsDropped,
					PairsMapped:      r.Reconcile.PairsMapped,
					OffersWithoutKey: r.OffersWithoutKey,
					ExcludedMatched:  r.ExcludedMatched,
					Offers:           r.Offers,
					Clusters:         r.Clusters,
					Elapsed:          r.Elapsed,
					ModelGeneration:  sl.gen,
					Err:              r.Err,
					Fetch:            r.Fetch,
				},
			}
			select {
			case out <- sr:
			case <-ctx.Done():
				// The consumer may be gone; drain inner (stream.Run
				// also watches ctx, so it closes promptly) and exit.
				for range inner {
				}
				return
			}
		}
	}()
	return out, nil
}

// AddReport is the outcome of an AddToCatalog run, with rejected products
// separated by cause.
type AddReport struct {
	// Added counts products inserted into the catalog.
	Added int
	// KeyCollisions are products whose synthesized ID (prefix + cluster
	// key) collided with an existing product ID — typically the product
	// was already added by an earlier wave, or two synthesized products
	// share a key. Nothing is wrong with the product itself.
	KeyCollisions []Synthesized
	// SchemaViolations are products rejected on their own merits: a spec
	// attribute outside the category schema, or an unknown category.
	SchemaViolations []Synthesized
	// KeyShadowed are products that were added (they count in Added)
	// whose UPC/MPN key was already owned by a different catalog product:
	// Catalog.ProductByKey keeps resolving the key to the earlier product,
	// so these products are reachable by ID and category only.
	KeyShadowed []Synthesized
}

// Skipped returns every rejected product (collisions then violations),
// mirroring the pre-AddReport return value.
func (r AddReport) Skipped() []Synthesized {
	return append(append([]Synthesized(nil), r.KeyCollisions...), r.SchemaViolations...)
}

// AddToCatalog inserts synthesized products into the catalog as new
// product instances, assigning IDs with the given prefix. Rejected
// products are reported by cause: ID collisions with existing products
// distinctly from schema violations. Insertions bump the affected
// categories' versions, which evicts the matcher's warm indexes for those
// categories (see Catalog.CategoryVersion) — a following synthesis run
// observes the grown catalog.
//
// A product with no cluster key gets an ID reserved by the store itself
// (Catalog.AddProductAutoID) inside the insertion's critical section, so
// concurrent AddToCatalog calls — and repeated calls with the same prefix
// — can never mint colliding keyless IDs or misreport a valid product as
// a key collision. Keyed and generated IDs share the prefix namespace: a
// cluster key that is literally of the form "nokey-<n>" can collide with
// a previously generated ID and is then reported under KeyCollisions like
// any other ID collision.
func (s *System) AddToCatalog(products []Synthesized, idPrefix string) AddReport {
	var report AddReport
	for _, p := range products {
		if p.Key == "" {
			prod := Product{CategoryID: p.CategoryID, Spec: p.Spec}
			// The generated ID cannot collide, so any failure is a
			// schema-or-category rejection. The spec may still carry a
			// UPC/MPN that duplicates an existing key (the cluster key is
			// empty, not necessarily the spec), so shadowing is surfaced
			// here exactly as on the keyed path.
			switch _, out, err := s.store.AddProductAutoID(idPrefix, prod); {
			case err != nil:
				report.SchemaViolations = append(report.SchemaViolations, p)
			default:
				report.Added++
				if out.KeyShadowedBy != "" {
					report.KeyShadowed = append(report.KeyShadowed, p)
				}
			}
			continue
		}
		prod := Product{ID: idPrefix + "-" + p.Key, CategoryID: p.CategoryID, Spec: p.Spec}
		switch out, err := s.store.AddProductOutcome(prod); {
		case err == nil:
			report.Added++
			if out.KeyShadowedBy != "" {
				report.KeyShadowed = append(report.KeyShadowed, p)
			}
		case errors.Is(err, catalog.ErrDuplicateProduct):
			report.KeyCollisions = append(report.KeyCollisions, p)
		default:
			report.SchemaViolations = append(report.SchemaViolations, p)
		}
	}
	return report
}
