package eval

import (
	"math"
	"testing"
)

func TestSampleSizePaperValue(t *testing.T) {
	// §5.1/§5.2: 384 samples give a 95% confidence level (5% margin).
	if got := SampleSize(0.95, 0.05); got != 385 && got != 384 {
		t.Errorf("SampleSize(0.95, 0.05) = %d, want ~384", got)
	}
	// Tighter margins need more samples.
	if SampleSize(0.95, 0.01) <= SampleSize(0.95, 0.05) {
		t.Error("tighter margin should need more samples")
	}
	if SampleSize(0.99, 0.05) <= SampleSize(0.90, 0.05) {
		t.Error("higher confidence should need more samples")
	}
}

func TestProportionInterval(t *testing.T) {
	iv := ProportionInterval(92, 100, 0.95)
	if math.Abs(iv.Estimate-0.92) > 1e-12 {
		t.Errorf("estimate = %g", iv.Estimate)
	}
	if iv.Margin <= 0 || iv.Margin > 0.1 {
		t.Errorf("margin = %g", iv.Margin)
	}
	if !iv.Contains(0.92) {
		t.Error("interval must contain its estimate")
	}
	if iv.High() > 1 || iv.Low() < 0 {
		t.Error("interval must be clamped to [0,1]")
	}
	if got := ProportionInterval(0, 0, 0.95); got.Estimate != 0 || got.Margin != 0 {
		t.Errorf("zero trials = %+v", got)
	}
	// All successes: estimate 1, margin 0 under normal approximation.
	one := ProportionInterval(50, 50, 0.95)
	if one.Estimate != 1 || one.Margin != 0 {
		t.Errorf("all successes = %+v", one)
	}
}

func TestGradeSynthesisSampled(t *testing.T) {
	ds, products := pipelineRun(t)
	if len(products) < 10 {
		t.Skip("too few products")
	}
	exact := GradeSynthesis(products, ds.Truth, ds.Universe)

	// Full sample degrades to exact grading.
	full := GradeSynthesisSampled(products, ds.Truth, ds.Universe, len(products)+10, 0.95, 1)
	if full.SampledProducts != exact.Products {
		t.Errorf("full sample products = %d, want %d", full.SampledProducts, exact.Products)
	}
	if math.Abs(full.AttributePrec.Estimate-exact.AttributePrecision()) > 1e-12 {
		t.Errorf("full sample precision %g != exact %g", full.AttributePrec.Estimate, exact.AttributePrecision())
	}

	// A genuine sample: the interval should usually cover the exact value.
	sampled := GradeSynthesisSampled(products, ds.Truth, ds.Universe, len(products)/2, 0.95, 7)
	if sampled.SampledProducts != len(products)/2 {
		t.Errorf("sampled products = %d", sampled.SampledProducts)
	}
	if !sampled.AttributePrec.Contains(exact.AttributePrecision()) {
		t.Logf("note: 95%% interval [%.3f, %.3f] missed exact %.3f (can happen 1 in 20)",
			sampled.AttributePrec.Low(), sampled.AttributePrec.High(), exact.AttributePrecision())
	}

	// Determinism: same seed, same sample.
	again := GradeSynthesisSampled(products, ds.Truth, ds.Universe, len(products)/2, 0.95, 7)
	if again.AttributePrec != sampled.AttributePrec {
		t.Error("sampling not deterministic for fixed seed")
	}
}
