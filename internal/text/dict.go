package text

import (
	"unicode"
	"unicode/utf8"
)

// Dict is an immutable token interner: a bijection between token strings
// and dense uint32 IDs assigned in interning order. Dense IDs let callers
// replace map-of-string structures with flat arrays indexed by token ID —
// the matcher's inverted index keeps its posting lists and IDF weights
// this way, so the per-token work on the match hot path is an array load
// instead of a string-keyed map probe.
//
// A Dict is built through a DictBuilder and never mutated afterwards, so
// lookups need no synchronization. Growing a vocabulary produces a new
// Dict (see Extend); existing IDs are preserved, which keeps structures
// indexed by the old Dict valid under the new one.
type Dict struct {
	ids  map[string]uint32
	toks []string
}

// Len returns the number of interned tokens. A nil Dict is empty.
func (d *Dict) Len() int {
	if d == nil {
		return 0
	}
	return len(d.toks)
}

// Token returns the token string interned as id.
func (d *Dict) Token(id uint32) string { return d.toks[id] }

// Lookup returns the ID of tok, if interned.
func (d *Dict) Lookup(tok string) (uint32, bool) {
	if d == nil {
		return 0, false
	}
	id, ok := d.ids[tok]
	return id, ok
}

// LookupBytes is Lookup for a token spelled as bytes. It does not
// allocate, so match-time tokenization can probe the dictionary with a
// reused scratch buffer.
func (d *Dict) LookupBytes(tok []byte) (uint32, bool) {
	if d == nil {
		return 0, false
	}
	id, ok := d.ids[string(tok)]
	return id, ok
}

// Extend returns a builder seeded with the receiver's assignments: every
// interned token keeps its ID, and new tokens get the next dense IDs.
// The receiver may be nil (an empty seed). The receiver is not modified
// and stays valid for concurrent lookups while the builder grows.
func (d *Dict) Extend() *DictBuilder {
	if d == nil {
		return NewDictBuilder()
	}
	ids := make(map[string]uint32, len(d.ids)+8)
	for tok, id := range d.ids {
		ids[tok] = id
	}
	// The token slice is shared: the builder only appends past the
	// receiver's length, which readers of the receiver never index.
	return &DictBuilder{ids: ids, toks: d.toks}
}

// DictBuilder accumulates a vocabulary. Not safe for concurrent use;
// Build transfers ownership of the accumulated state, so a builder must
// not be used again after Build.
type DictBuilder struct {
	ids  map[string]uint32
	toks []string
}

// NewDictBuilder returns an empty builder.
func NewDictBuilder() *DictBuilder {
	return &DictBuilder{ids: make(map[string]uint32)}
}

// Len returns the number of tokens interned so far.
func (b *DictBuilder) Len() int { return len(b.toks) }

// Intern returns tok's ID, assigning the next dense ID on first sight.
func (b *DictBuilder) Intern(tok string) uint32 {
	if id, ok := b.ids[tok]; ok {
		return id
	}
	id := uint32(len(b.toks))
	b.ids[tok] = id
	b.toks = append(b.toks, tok)
	return id
}

// InternBytes is Intern for a token spelled as bytes. Only a first-seen
// token allocates (its permanent string); repeats are allocation-free.
func (b *DictBuilder) InternBytes(tok []byte) uint32 {
	if id, ok := b.ids[string(tok)]; ok {
		return id
	}
	s := string(tok)
	id := uint32(len(b.toks))
	b.ids[s] = id
	b.toks = append(b.toks, s)
	return id
}

// Build freezes the builder into an immutable Dict.
func (b *DictBuilder) Build() *Dict {
	return &Dict{ids: b.ids, toks: b.toks}
}

// TokenScanner streams the normalized tokens of one input string without
// allocating: each Next call returns the next token as a byte slice into
// an internal scratch buffer, valid only until the following Next call.
// Obtain one with Tokenizer.Scanner; the zero value scans nothing.
type TokenScanner struct {
	t   Tokenizer
	src string
	pos int
	buf []byte
}

// Scanner returns a scanner over the tokens of s, applying the
// tokenizer's normalization. buf is an optional scratch buffer reused for
// token assembly; pass the slice recovered from a previous scanner's
// Buffer to amortize growth across calls.
func (t Tokenizer) Scanner(buf []byte, s string) TokenScanner {
	return TokenScanner{t: t, src: s, buf: buf[:0]}
}

// Next returns the next token, or ok=false at end of input. The returned
// slice is reused by the following Next call; callers must copy it to
// retain it.
func (sc *TokenScanner) Next() (tok []byte, ok bool) {
	for {
		tok, ok = sc.next()
		if !ok {
			return nil, false
		}
		if sc.t.StopWords != nil && sc.t.StopWords[string(tok)] {
			continue
		}
		return tok, true
	}
}

// Buffer returns the (possibly grown) scratch buffer for reuse in a later
// Scanner call.
func (sc *TokenScanner) Buffer() []byte { return sc.buf }

func (sc *TokenScanner) next() ([]byte, bool) {
	sc.buf = sc.buf[:0]
	var cls runeClass
	for sc.pos < len(sc.src) {
		r, size := utf8.DecodeRuneInString(sc.src[sc.pos:])
		c := classify(r)
		if c == classOther {
			sc.pos += size
			if len(sc.buf) > 0 {
				return sc.buf, true
			}
			continue
		}
		if len(sc.buf) > 0 && c != cls && !sc.t.KeepAlphaNumJoined {
			// Letter/digit boundary: emit without consuming the rune.
			return sc.buf, true
		}
		cls = c
		sc.pos += size
		sc.buf = utf8.AppendRune(sc.buf, unicode.ToLower(r))
	}
	if len(sc.buf) > 0 {
		return sc.buf, true
	}
	return nil, false
}

// TokenizeIDs appends the interned IDs of s's tokens to dst, in order of
// appearance, interning first-seen tokens into b. buf is an optional byte
// scratch for token assembly. Both buffers are returned (possibly grown)
// so callers can reuse them across values — the index build path calls
// this once per attribute value and allocates nothing in steady state.
func (t Tokenizer) TokenizeIDs(b *DictBuilder, dst []uint32, buf []byte, s string) ([]uint32, []byte) {
	sc := t.Scanner(buf, s)
	for {
		tok, ok := sc.Next()
		if !ok {
			break
		}
		dst = append(dst, b.InternBytes(tok))
	}
	return dst, sc.Buffer()
}
