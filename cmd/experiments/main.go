// Command experiments regenerates the paper's tables and figures on a
// synthetic marketplace, plus the ablation sweeps described in DESIGN.md.
//
// Usage:
//
//	experiments -all                     # everything, default scale
//	experiments -table2 -fig6            # selected experiments
//	experiments -all -scale large        # laptop-scale corpus (slower)
//	experiments -all -seed 7 -out report.txt
//	experiments -all -cpuprofile cpu.prof -memprofile mem.prof
//	experiments -stream 16               # replay incoming offers as a 16-wave feed
//	experiments -faults                  # fault-injection replay: retry recovery, host outage
//	experiments -servebench BENCH_serve.json  # HTTP serving layer: requests/sec, p50/p99
//
// Output is text shaped like the paper's tables and figures (coverage /
// precision series), suitable for EXPERIMENTS.md. The profile flags
// capture the whole run (marketplace generation, offline learning, and
// every selected experiment) for go tool pprof.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"prodsynth/internal/core"
	"prodsynth/internal/experiments"
	"prodsynth/internal/offer"
	"prodsynth/internal/stream"
	"prodsynth/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	// All teardown (profile flushes, file closes) happens via defers in
	// realMain, so it must return rather than os.Exit on failure.
	os.Exit(realMain())
}

func realMain() int {
	var (
		all        = flag.Bool("all", false, "run every experiment")
		table2     = flag.Bool("table2", false, "Table 2: end-to-end synthesis quality")
		table3     = flag.Bool("table3", false, "Table 3: per top-level category")
		table4     = flag.Bool("table4", false, "Table 4: recall by offer-set size")
		fig6       = flag.Bool("fig6", false, "Figure 6: classifier vs single features")
		fig7       = flag.Bool("fig7", false, "Figure 7: with vs without historical matches")
		fig8       = flag.Bool("fig8", false, "Figure 8: baseline comparison")
		fig9       = flag.Bool("fig9", false, "Figure 9: COMA++ delta settings")
		ablate     = flag.Bool("ablations", false, "ablation sweeps")
		nstream    = flag.Int("stream", 0, "replay the incoming offers as a continuous feed of this many waves")
		faults     = flag.Bool("faults", false, "fault-injection replay: retry recovery and host-outage scenarios")
		benchjson  = flag.String("benchjson", "", "measure batch vs stream (pipelined and barrier) and write a JSON report here")
		servebench = flag.String("servebench", "", "measure the HTTP serving layer (requests/sec, p50/p99) and write a JSON report here")
		durbench   = flag.String("durbench", "", "measure the durable catalog layer (snapshot codec MB/s, WAL append ns/record, replay records/sec) and write a JSON report here")
		scale      = flag.String("scale", "medium", "corpus scale: small, medium, large")
		seed       = flag.Int64("seed", 1, "random seed")
		workers    = flag.Int("workers", 0, "pipeline worker pool size (0 = default)")
		out        = flag.String("out", "", "write report here (default stdout)")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile (taken after the run) to this file")
	)
	flag.Parse()

	if !(*all || *table2 || *table3 || *table4 || *fig6 || *fig7 || *fig8 || *fig9 || *ablate || *nstream > 0 || *faults || *benchjson != "" || *servebench != "" || *durbench != "") {
		flag.Usage()
		return 2
	}

	// The heap-profile defer is registered before the CPU-profile ones,
	// so it runs last (LIFO): the snapshot is taken after CPU profiling
	// has stopped, and both flush even when the run fails.
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Print(err)
			return 1
		}
		defer func() {
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Print(err)
			}
			f.Close()
		}()
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Print(err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Print(err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Print(err)
			return 1
		}
		defer f.Close()
		w = f
	}

	err := run(w, runConfig{
		all: *all, table2: *table2, table3: *table3, table4: *table4,
		fig6: *fig6, fig7: *fig7, fig8: *fig8, fig9: *fig9, ablate: *ablate,
		nstream: *nstream, faults: *faults, benchjson: *benchjson,
		servebench: *servebench, durbench: *durbench,
		scale: *scale, seed: *seed, workers: *workers,
	})
	if err != nil {
		log.Print(err)
		return 1
	}
	return 0
}

type runConfig struct {
	all, table2, table3, table4    bool
	fig6, fig7, fig8, fig9, ablate bool
	nstream                        int
	faults                         bool
	benchjson                      string
	servebench                     string
	durbench                       string
	scale                          string
	seed                           int64
	workers                        int
}

func run(w io.Writer, rc runConfig) error {
	gen := scaleConfig(rc.scale)
	gen.Seed = rc.seed
	start := time.Now()
	fmt.Fprintf(w, "# prodsynth experiments — scale=%s seed=%d\n", rc.scale, rc.seed)
	fmt.Fprintf(w, "# generating marketplace: %d categories/domain, %d products/category, %d merchants\n\n",
		gen.CategoriesPerDomain, gen.ProductsPerCategory, gen.Merchants)

	env, err := experiments.Setup(context.Background(), gen, core.Config{Workers: rc.workers})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# setup done in %v: %d historical offers, %d incoming offers\n\n",
		time.Since(start).Round(time.Millisecond),
		len(env.Dataset.HistoricalOffers), len(env.Dataset.IncomingOffers))

	if rc.all || rc.table2 {
		experiments.RenderTable2(w, experiments.Table2(env))
	}
	if rc.all || rc.table3 {
		experiments.RenderTable3(w, experiments.Table3(env))
	}
	if rc.all || rc.table4 {
		heavy, light := experiments.Table4(env)
		experiments.RenderTable4(w, heavy, light)
	}
	figures := []struct {
		enabled bool
		build   func(*experiments.Env) (*experiments.Figure, error)
	}{
		{rc.all || rc.fig6, experiments.Figure6},
		{rc.all || rc.fig7, experiments.Figure7},
		{rc.all || rc.fig8, experiments.Figure8},
		{rc.all || rc.fig9, experiments.Figure9},
	}
	for _, f := range figures {
		if !f.enabled {
			continue
		}
		fig, err := f.build(env)
		if err != nil {
			return err
		}
		if err := experiments.RenderFigure(w, fig); err != nil {
			return err
		}
	}
	if rc.all || rc.ablate {
		if err := runAblations(context.Background(), w, env); err != nil {
			return err
		}
	}
	if rc.nstream > 0 {
		if err := runStreamReplay(w, env, rc.nstream); err != nil {
			return err
		}
	}
	if rc.faults {
		if err := runFaultReplay(w, env); err != nil {
			return err
		}
	}
	if rc.benchjson != "" {
		if err := runBenchPipeline(w, env, rc, rc.benchjson); err != nil {
			return err
		}
		// The fetch-layer companion report lands next to the pipeline one.
		fetchPath := filepath.Join(filepath.Dir(rc.benchjson), "BENCH_fetch.json")
		if err := runBenchFetch(w, env, rc, fetchPath); err != nil {
			return err
		}
	}
	if rc.servebench != "" {
		if err := runServeBench(w, env, rc, rc.servebench); err != nil {
			return err
		}
	}
	if rc.durbench != "" {
		if err := runDurBench(w, rc, rc.durbench); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "# total %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// runStreamReplay replays the dataset's incoming offers as a continuous
// feed of n waves through the streaming pipeline with cross-batch
// cluster memory, reports per-wave cost and cluster-memory activity, and
// checks the merged stream output against the one-shot runtime result
// the Env already holds — the stream≡batch equivalence, live.
func runStreamReplay(w io.Writer, env *experiments.Env, n int) error {
	offers := env.Dataset.IncomingOffers
	if n > len(offers) {
		n = len(offers)
	}
	// The cancel releases both the pipeline and the feeder when a wave
	// error makes this function return early.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	waves := make(chan []offer.Offer)
	go func() {
		defer close(waves)
		for i := 0; i < n; i++ {
			select {
			case waves <- offers[i*len(offers)/n : (i+1)*len(offers)/n]:
			case <-ctx.Done():
				return
			}
		}
	}()
	out := stream.Run(ctx, env.Dataset.Catalog, env.Offline, waves,
		core.MapFetcher(env.Dataset.Pages), env.Config, stream.Options{})

	fmt.Fprintf(w, "## streaming replay — %d offers over %d waves, cross-batch cluster memory\n\n", len(offers), n)
	fmt.Fprintf(w, "%6s %8s %9s %9s %8s %7s %8s %8s %9s %10s %10s %10s\n",
		"wave", "offers", "excluded", "clusters", "open", "sealed",
		"fetches", "retried", "feedonly", "prepare", "fuse", "elapsed")
	var final stream.Result
	sealed := 0
	for r := range out {
		if r.Err != nil {
			return fmt.Errorf("stream wave %d: %w", r.Wave, r.Err)
		}
		sealed += len(r.Sealed)
		if r.Final {
			final = r
			continue
		}
		fmt.Fprintf(w, "%6d %8d %9d %9d %8d %7d %8d %8d %9d %10v %10v %10v\n",
			r.Wave, r.Offers, r.ExcludedMatched, r.Clusters, r.OpenClusters, len(r.Sealed),
			r.Fetch.Attempts, r.Fetch.Retried, len(r.Fetch.FeedOnly),
			r.PrepareElapsed.Round(time.Microsecond), r.FuseElapsed.Round(time.Microsecond),
			r.Elapsed.Round(time.Microsecond))
	}
	fmt.Fprintf(w, "\n# merged: %d products from %d offers in %v processing time (prepare %v, fuse %v)\n",
		len(final.Products), final.Offers, final.Elapsed.Round(time.Millisecond),
		final.PrepareElapsed.Round(time.Millisecond), final.FuseElapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "# sealed clusters: %d total (%d at close)\n", sealed, len(final.Sealed))
	fmt.Fprintf(w, "# fetch: %s\n", final.Fetch)

	verdict := productsVerdict(final.Products, env.Runtime.Products)
	fmt.Fprintf(w, "# stream ≡ one-shot synthesis: %s\n\n", verdict)
	return nil
}

func scaleConfig(scale string) synth.Config {
	switch scale {
	case "small":
		return synth.Config{CategoriesPerDomain: 2, ProductsPerCategory: 20, Merchants: 24}
	case "large":
		return synth.ExperimentConfig()
	default:
		return synth.Config{CategoriesPerDomain: 4, ProductsPerCategory: 60, Merchants: 60}
	}
}

func runAblations(ctx context.Context, w io.Writer, env *experiments.Env) error {
	type ablation struct {
		name    string
		run     func(context.Context, *experiments.Env) ([]experiments.AblationRow, error)
		metrics []string
	}
	for _, a := range []ablation{
		{"drop one feature", experiments.AblationDropFeature, nil},
		{"name-similarity feature (§7 future work)", experiments.AblationNameFeature, nil},
		{"value fusion strategy", experiments.AblationFusion, []string{"attr precision", "products"}},
		{"clustering key attributes", experiments.AblationClusterKeys, []string{"attr precision", "products"}},
		{"extraction coverage", experiments.AblationExtraction, []string{"attr precision", "products"}},
	} {
		rows, err := a.run(ctx, env)
		if err != nil {
			return err
		}
		experiments.RenderAblation(w, a.name, rows, a.metrics...)
	}
	return nil
}
