package match

import (
	"container/list"
	"sync"
	"sync/atomic"

	"prodsynth/internal/catalog"
	"prodsynth/internal/text"
)

// Registry is a shared, process-wide cache of per-category matching state:
// the inverted TitleIndex and the linear-scan token cache. Before it
// existed, every worker goroutine of every Matcher.Run call rebuilt both
// from scratch — W workers × C categories redundant builds per run, and
// the whole cost again on the next run. The registry builds each category
// exactly once (sync.Once per entry) no matter how many goroutines race
// for it, and keeps the result warm across Matcher.Run calls, so repeated
// matching against the same catalog — the batch-synthesis and serving
// workloads — pays the build cost only on first touch.
//
// Entries are validated against catalog.Store.CategoryVersion on every
// acquisition: when Store.AddProduct bumps a category's version (as
// System.AddToCatalog does), the stale entry is replaced on the next
// lookup, and the replacement's title index is built by applying the
// catalog's append log as a posting-list delta (Store.ProductsSince)
// instead of re-tokenizing the whole category. In-flight matches keep the
// snapshot they started with.
//
// The entry map is split into shards picked by category hash, so
// concurrent category tasks contend on a shard lock rather than one
// global mutex, and each shard keeps an LRU over its entries: with a
// MaxEntries bound configured, cold categories are evicted and simply
// rebuild on their next touch. See RegistryOptions.
//
// All methods are safe for concurrent use.
type Registry struct {
	shards      []registryShard
	maxPerShard int // 0 = unbounded
	builds      atomic.Int64
	deltas      atomic.Int64
}

// RegistryOptions configures a Registry. The zero value applies defaults.
type RegistryOptions struct {
	// Shards is the number of lock shards the entry map is split into
	// (default 8). More shards cut lock contention at high category
	// counts; output is identical for every value.
	Shards int
	// MaxEntries bounds the number of cached category entries; 0 means
	// unbounded. The bound is distributed over the shards
	// (ceil(MaxEntries/Shards) each) and enforced per shard with LRU
	// eviction, so it is approximate in both directions: a skewed
	// category→shard distribution can evict before the global total
	// reaches MaxEntries, and the rounded-up per-shard capacities can
	// hold up to Shards-1 entries more than it. Size memory budgets
	// with that slack in mind. Evicted categories rebuild on next touch.
	MaxEntries int
}

const defaultRegistryShards = 8

type registryShard struct {
	mu      sync.Mutex
	entries map[registryKey]*registryEntry
	lru     list.List // front = most recently touched; values are registryKey
}

type registryKey struct {
	store    *catalog.Store
	category string
}

// registryEntry caches one category's matching state at one store version.
// The two representations build lazily and independently: a purely indexed
// workload never pays for the linear token cache and vice versa.
type registryEntry struct {
	version uint64        // store version observed when the entry was created
	elem    *list.Element // LRU position in the owning shard

	// Lineage for incremental index updates: when this entry replaces a
	// stale one whose index was already built, prevIndex/prevVersion seed
	// a posting-list delta instead of a cold rebuild.
	prevIndex   *TitleIndex
	prevVersion uint64

	idxOnce    sync.Once
	idxDone    atomic.Bool   // set after index, publishes it to entry()
	idxVersion atomic.Uint64 // catalog version the built index covers
	index      *TitleIndex

	linOnce sync.Once
	linear  []productTokens
}

// DefaultRegistry is the process-wide registry used by Matcher when no
// explicit Registry is set.
var DefaultRegistry = NewRegistry()

// NewRegistry returns an empty registry with default options. Most
// callers should use DefaultRegistry; private registries exist for tests
// and for callers that need independent lifecycles or bounds.
func NewRegistry() *Registry {
	return NewRegistryWithOptions(RegistryOptions{})
}

// NewRegistryWithOptions returns an empty registry with the given
// sharding and memory bounds.
func NewRegistryWithOptions(o RegistryOptions) *Registry {
	n := o.Shards
	if n <= 0 {
		n = defaultRegistryShards
	}
	r := &Registry{shards: make([]registryShard, n)}
	for i := range r.shards {
		r.shards[i].entries = make(map[registryKey]*registryEntry)
	}
	if o.MaxEntries > 0 {
		r.maxPerShard = (o.MaxEntries + n - 1) / n
	}
	return r
}

// shardFor picks the shard for a key by FNV-1a over the category name.
// The store pointer is left out: registries overwhelmingly serve one
// store, and hash quality across categories is what spreads the locks.
func (r *Registry) shardFor(k registryKey) *registryShard {
	if len(r.shards) == 1 {
		return &r.shards[0]
	}
	h := uint32(2166136261)
	for i := 0; i < len(k.category); i++ {
		h ^= uint32(k.category[i])
		h *= 16777619
	}
	return &r.shards[h%uint32(len(r.shards))]
}

// entry returns the live cache entry for (store, category), replacing any
// entry built at an older store version. The comparison is strictly
// "older": a goroutine whose version read predates a concurrent AddProduct
// must not evict the newer entry another goroutine already installed, or
// the two would thrash rebuilding each other's work.
func (r *Registry) entry(store *catalog.Store, category string) *registryEntry {
	v := store.CategoryVersion(category)
	k := registryKey{store: store, category: category}
	sh := r.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.entries[k]
	if e != nil && e.version >= v {
		sh.lru.MoveToFront(e.elem)
		return e
	}
	ne := &registryEntry{version: v}
	if e != nil {
		if e.idxDone.Load() {
			ne.prevIndex = e.index
			ne.prevVersion = e.idxVersion.Load()
		}
		sh.lru.Remove(e.elem)
	}
	ne.elem = sh.lru.PushFront(k)
	sh.entries[k] = ne
	if r.maxPerShard > 0 {
		for len(sh.entries) > r.maxPerShard {
			back := sh.lru.Back()
			sh.lru.Remove(back)
			delete(sh.entries, back.Value.(registryKey))
		}
	}
	return ne
}

// TitleIndex returns the category's inverted title index. A first touch
// builds it from the full product list; a touch after a version bump
// extends the previous index with the catalog's append log — a
// posting-list delta that skips re-tokenizing the existing products.
// (A delta still copies the vocabulary map and posting-list headers, so
// it costs O(vocabulary + new products), not O(new products): the win
// over a cold build is dropping the O(category) re-tokenization, which
// dominates.)
func (r *Registry) TitleIndex(store *catalog.Store, category string) *TitleIndex {
	e := r.entry(store, category)
	e.idxOnce.Do(func() {
		// The lineage seed is dropped once consumed: holding it past the
		// build would pin the previous generation's index (its vocabulary
		// map is not shared) for the life of the entry.
		prev := e.prevIndex
		e.prevIndex = nil
		if prev != nil {
			if added, v, ok := store.ProductsSince(category, e.prevVersion); ok {
				e.index = prev.extend(added)
				e.idxVersion.Store(v)
				e.idxDone.Store(true)
				r.deltas.Add(1)
				return
			}
		}
		products, v := store.ProductsInCategoryVersioned(category)
		e.index = NewTitleIndex(products)
		e.idxVersion.Store(v)
		e.idxDone.Store(true)
		r.builds.Add(1)
	})
	return e.index
}

// linearTokens returns the category's linear-scan token cache, building it
// on first use. The linear path is the ablation/tiny-catalog fallback, so
// it always rebuilds cold; only the indexed path applies deltas.
func (r *Registry) linearTokens(store *catalog.Store, category string) []productTokens {
	e := r.entry(store, category)
	e.linOnce.Do(func() {
		for _, p := range store.ProductsInCategory(category) {
			toks := make(map[string]bool)
			for _, av := range p.Spec {
				for _, t := range text.DefaultTokenizer.Tokenize(av.Value) {
					toks[t] = true
				}
			}
			e.linear = append(e.linear, productTokens{id: p.ID, tokens: toks})
		}
		r.builds.Add(1)
	})
	return e.linear
}

// Builds reports how many cold category builds (index or token cache) the
// registry has performed — the regression surface for "build once per
// category regardless of worker count". Incremental index updates do not
// count; see Deltas.
func (r *Registry) Builds() int64 { return r.builds.Load() }

// Deltas reports how many incremental index updates (posting-list deltas
// applied after a category version bump) the registry has performed.
func (r *Registry) Deltas() int64 { return r.deltas.Load() }

// Entries reports the number of cached category entries across all
// shards — the quantity RegistryOptions.MaxEntries bounds.
func (r *Registry) Entries() int {
	n := 0
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Invalidate drops the cached entry for one (store, category) pair.
// Version validation makes this unnecessary after Store.AddProduct; it
// exists for callers that mutate matching-relevant state the store cannot
// see. The next touch rebuilds cold.
func (r *Registry) Invalidate(store *catalog.Store, category string) {
	k := registryKey{store: store, category: category}
	sh := r.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e := sh.entries[k]; e != nil {
		sh.lru.Remove(e.elem)
		delete(sh.entries, k)
	}
}

// ReleaseStore drops every entry of one store, releasing the memory (and
// the store reference) held for it. Call when a store goes out of use in a
// long-lived process.
func (r *Registry) ReleaseStore(store *catalog.Store) {
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for k, e := range sh.entries {
			if k.store == store {
				sh.lru.Remove(e.elem)
				delete(sh.entries, k)
			}
		}
		sh.mu.Unlock()
	}
}
